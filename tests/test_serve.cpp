// Serving front-end (src/serve): coalescing triggers, session sugar,
// concurrent clients, and — the contract the pipeline optimization
// rides on — byte-identical results and model metrics between the
// pipelined executor and sequential execution, for any PTRIE_WORKERS.
// The WorkerSweepServe suite name keeps these tests inside the TSan
// CI's `--gtest_filter=WorkerSweep*` net.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "check/runner.hpp"
#include "check/schedule.hpp"
#include "core/parallel.hpp"
#include "obs/json.hpp"
#include "obs/metrics_window.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "pimtrie/pim_trie.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

using namespace ptrie;
using core::BitString;
using core::ThreadPool;

namespace {

serve::Op to_serve_op(workload::ReqOp op) {
  return static_cast<serve::Op>(static_cast<std::uint8_t>(op));
}

struct StreamResult {
  std::vector<std::size_t> lcps;
  std::vector<std::uint64_t> gets;  // ~0 = miss
  std::vector<std::vector<std::pair<BitString, std::uint64_t>>> subtrees;
  std::uint64_t rounds = 0, words = 0, pim_time = 0;
  std::vector<std::pair<BitString, std::uint64_t>> contents;

  bool operator==(const StreamResult& o) const {
    return lcps == o.lcps && gets == o.gets && subtrees == o.subtrees &&
           rounds == o.rounds && words == o.words && pim_time == o.pim_time &&
           contents == o.contents;
  }
};

// Builds a fresh trie, replays `reqs` through a Server (single-threaded
// submission, size-only batch closing -> deterministic batch
// composition), and captures every answer plus the model-metric deltas
// and the final trie contents.
StreamResult replay_stream(const std::vector<workload::Request>& reqs,
                           const std::vector<BitString>& keys, serve::Server::Options opt) {
  pim::System sys(16, 5);
  pimtrie::Config cfg;
  cfg.seed = 11;
  pimtrie::PimTrie trie(sys, cfg);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;
  trie.build(keys, vals);

  auto before = sys.metrics().snapshot();
  StreamResult r;
  {
    serve::Server server(trie, opt);
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(reqs.size());
    for (const auto& q : reqs)
      futs.push_back(server.submit(to_serve_op(q.op), q.key, q.value));
    server.drain();
    server.stop();
    for (auto& f : futs) {
      serve::Response resp = f.get();
      switch (resp.op) {
        case serve::Op::kLcp: r.lcps.push_back(resp.lcp); break;
        case serve::Op::kGet: r.gets.push_back(resp.value.value_or(~0ull)); break;
        case serve::Op::kSubtree: r.subtrees.push_back(std::move(resp.subtree)); break;
        default: break;
      }
    }
  }
  auto after = sys.metrics().snapshot();
  r.rounds = after.rounds - before.rounds;
  r.words = after.words - before.words;
  r.pim_time = after.pim_time - before.pim_time;
  r.contents = trie.debug_collect();
  std::sort(r.contents.begin(), r.contents.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return r;
}

class WorkerSweepServe : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::instance().set_workers(1); }
};

}  // namespace

// The tentpole contract: for a fixed batch composition, the pipelined
// executor (prepare k+1 overlapped with execute k, prep on its own
// thread) produces byte-identical answers, model metrics, and final
// trie contents to sequential prepare+execute — at PTRIE_WORKERS 1, 4,
// and the hardware count, and with the preparation stage either serial
// or sharing the worker pool with the executor.
TEST_F(WorkerSweepServe, PipelinedMatchesSequentialAcrossWorkerCounts) {
  auto keys = workload::uniform_keys(400, 64, 31);
  workload::MixProfile mix;
  auto reqs = workload::request_stream(keys, 240, mix, 32);

  serve::Server::Options base;
  base.max_batch = 64;
  base.max_delay = std::chrono::hours(2);  // size/flush closes only

  serve::Server::Options seq = base;
  seq.pipelined = false;
  ThreadPool::instance().set_workers(1);
  StreamResult want = replay_stream(reqs, keys, seq);
  ASSERT_FALSE(want.lcps.empty());
  ASSERT_FALSE(want.gets.empty());
  ASSERT_GT(want.rounds, 0u);

  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  for (std::size_t w : {std::size_t(1), std::size_t(4), hw}) {
    for (bool parallel_prepare : {false, true}) {
      ThreadPool::instance().set_workers(w);
      serve::Server::Options pipe = base;
      pipe.pipelined = true;
      pipe.parallel_prepare = parallel_prepare;
      StreamResult got = replay_stream(reqs, keys, pipe);
      EXPECT_TRUE(got == want) << "divergence at workers=" << w
                               << " parallel_prepare=" << parallel_prepare;
    }
  }
}

// Sequential mode must itself be worker-count invariant (the pipeline
// comparison above would not catch a bug common to both paths).
TEST_F(WorkerSweepServe, SequentialInvariantAcrossWorkerCounts) {
  auto keys = workload::uniform_keys(300, 64, 41);
  workload::MixProfile mix;
  auto reqs = workload::request_stream(keys, 160, mix, 42);
  serve::Server::Options seq;
  seq.max_batch = 32;
  seq.max_delay = std::chrono::hours(2);
  seq.pipelined = false;

  ThreadPool::instance().set_workers(1);
  StreamResult want = replay_stream(reqs, keys, seq);
  for (std::size_t w : {std::size_t(2), std::size_t(4)}) {
    ThreadPool::instance().set_workers(w);
    EXPECT_TRUE(replay_stream(reqs, keys, seq) == want) << "workers=" << w;
  }
}

TEST(ServeCoalescer, ClosesOnSizeTrigger) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 2;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(64, 64, 7);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 8;
  opt.max_delay = std::chrono::hours(2);
  serve::Server server(trie, opt);
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 20; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, keys[i % keys.size()]));
  server.drain();
  auto st = server.stats();
  server.stop();
  EXPECT_EQ(st.ops, 20u);
  EXPECT_EQ(st.close_size, 2u);   // two full batches of 8
  EXPECT_EQ(st.close_flush, 1u);  // drain flushes the remaining 4
  ASSERT_EQ(st.batch_sizes.size(), 3u);
  EXPECT_EQ(st.batch_sizes[0], 8u);
  EXPECT_EQ(st.batch_sizes[1], 8u);
  EXPECT_EQ(st.batch_sizes[2], 4u);
  for (auto& f : futs) f.get();
}

TEST(ServeCoalescer, ClosesOnDeadlineWithoutFlush) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 2;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(32, 64, 7);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 1 << 20;  // size trigger unreachable
  opt.max_delay = std::chrono::milliseconds(2);
  serve::Server server(trie, opt);
  auto f0 = server.submit(serve::Op::kLcp, keys[0]);
  auto f1 = server.submit(serve::Op::kGet, keys[1]);
  // No flush: only the deadline can close the batch.
  EXPECT_EQ(f0.get().lcp, keys[0].size());
  EXPECT_EQ(f1.get().value.value_or(0), 1u);
  auto st = server.stats();
  server.stop();
  EXPECT_GE(st.close_deadline, 1u);
  EXPECT_EQ(st.close_flush, 0u);
}

TEST(ServeSession, RoundTripMatchesDirectTrie) {
  auto keys = workload::uniform_keys(200, 64, 17);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;

  pim::System sys_direct(16, 5);
  pimtrie::Config cfg;
  cfg.seed = 4;
  pimtrie::PimTrie direct(sys_direct, cfg);
  direct.build(keys, vals);

  pim::System sys_srv(16, 5);
  pimtrie::PimTrie served(sys_srv, cfg);
  served.build(keys, vals);
  serve::Server server(served);
  auto session = server.session();

  auto fresh = workload::uniform_keys(8, 64, 99);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    session.insert(fresh[i], 1000 + i).get();
    ASSERT_EQ(session.get(fresh[i]).get().value.value_or(0), 1000 + i);
  }
  direct.batch_insert(fresh, [&] {
    std::vector<std::uint64_t> v;
    for (std::size_t i = 0; i < fresh.size(); ++i) v.push_back(1000 + i);
    return v;
  }());

  for (std::size_t i = 0; i < 32; ++i) {
    const BitString& k = keys[(i * 7) % keys.size()];
    EXPECT_EQ(session.lcp(k).get().lcp, direct.batch_lcp({k})[0]);
    EXPECT_EQ(session.get(k).get().value, direct.batch_get({k})[0]);
    BitString prefix = k.prefix(6);
    EXPECT_EQ(session.subtree(prefix).get().subtree, direct.batch_subtree({prefix})[0]);
  }

  session.erase(fresh[0]).get();
  EXPECT_FALSE(session.get(fresh[0]).get().value.has_value());
  server.stop();
}

TEST(ServeConcurrentClients, AnswersMatchDirect) {
  auto keys = workload::uniform_keys(300, 64, 23);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;

  pim::System sys_direct(16, 5);
  pimtrie::Config cfg;
  cfg.seed = 6;
  pimtrie::PimTrie direct(sys_direct, cfg);
  direct.build(keys, vals);
  auto want = direct.batch_lcp(keys);

  pim::System sys_srv(16, 5);
  pimtrie::PimTrie served(sys_srv, cfg);
  served.build(keys, vals);
  serve::Server::Options opt;
  opt.max_batch = 37;  // odd size so batches straddle client boundaries
  opt.max_delay = std::chrono::microseconds(200);
  serve::Server server(served, opt);

  constexpr std::size_t kClients = 4;
  std::vector<std::future<serve::Response>> futs(keys.size());
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < keys.size(); i += kClients)
        futs[i] = server.submit(serve::Op::kLcp, keys[i]);
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(futs[i].get().lcp, want[i]);
  auto st = server.stats();
  server.stop();
  EXPECT_EQ(st.ops, keys.size());
  EXPECT_GT(st.mean_batch(), 1.0);
}

TEST(ServeOrder, EpochGroupingVsStrictOrder) {
  auto keys = workload::uniform_keys(64, 64, 53);
  std::vector<std::uint64_t> vals(keys.size(), 7);

  for (bool strict : {false, true}) {
    pim::System sys(8, 3);
    pimtrie::Config cfg;
    cfg.seed = 8;
    pimtrie::PimTrie trie(sys, cfg);
    trie.build(keys, vals);

    serve::Server::Options opt;
    opt.max_batch = 1 << 20;
    opt.max_delay = std::chrono::hours(2);
    opt.strict_order = strict;
    serve::Server server(trie, opt);
    // One batch containing get(k) submitted BEFORE erase(k): strict
    // arrival order answers the get from the pre-erase state; epoch
    // grouping runs writes first, so the get misses.
    auto get_f = server.submit(serve::Op::kGet, keys[0]);
    auto erase_f = server.submit(serve::Op::kErase, keys[0]);
    server.flush();
    server.drain();
    erase_f.get();
    if (strict)
      EXPECT_EQ(get_f.get().value.value_or(0), 7u);
    else
      EXPECT_FALSE(get_f.get().value.has_value());
    server.stop();
  }
}

// Live gauges (satellite of the lifecycle-observability PR): after a
// drained run the in-flight and queue-depth gauges must read zero while
// the high-water marks reflect the burst that passed through. With
// single-threaded submission and size-only closes, the 8th submit sees
// all 8 requests still uncompleted (no batch has closed yet), so both
// marks are at least max_batch; the backlog mark is at least 1 because
// every batch transits the raw queue.
TEST(ServeStats, GaugesDrainToZeroWithHighWaterMarks) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 2;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(64, 64, 7);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 8;
  opt.max_delay = std::chrono::hours(2);
  serve::Server server(trie, opt);
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 64; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, keys[i % keys.size()]));
  server.drain();
  auto st = server.stats();
  server.stop();
  for (auto& f : futs) f.get();

  EXPECT_EQ(st.ops, 64u);
  EXPECT_EQ(st.in_flight, 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_GE(st.max_in_flight, 8u);
  EXPECT_GE(st.max_queue_depth, 8u);
  EXPECT_GE(st.max_backlog, 1u);
  EXPECT_LE(st.max_backlog, opt.max_backlog);  // backpressure bound
  EXPECT_EQ(st.alerts, 0u);                    // lifecycle off: no detector
}

// Regression: the high-water marks (max_in_flight, max_queue_depth,
// max_backlog) are episode gauges — stop() + start() begins a new
// episode, so a restarted server's peaks must not carry over from the
// previous run. Counters (ops, batches) keep accumulating.
TEST(ServeStats, HighWaterMarksResetOnRestart) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 2;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(64, 64, 7);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 8;
  opt.max_delay = std::chrono::hours(2);
  serve::Server server(trie, opt);
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 64; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, keys[i % keys.size()]));
  server.drain();
  auto before = server.stats();
  server.stop();
  for (auto& f : futs) f.get();
  ASSERT_GE(before.max_in_flight, 8u);
  ASSERT_GE(before.max_backlog, 1u);

  server.start();
  auto fresh = server.stats();
  EXPECT_EQ(fresh.max_in_flight, fresh.in_flight);
  EXPECT_EQ(fresh.max_queue_depth, fresh.queue_depth);
  EXPECT_EQ(fresh.max_backlog, 0u);
  EXPECT_EQ(fresh.ops, before.ops);  // counters survive the restart

  // The restarted episode records its own (smaller) peaks and still
  // answers correctly.
  auto f = server.submit(serve::Op::kGet, keys[0]);
  server.drain();
  auto r = f.get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 1u);
  auto after = server.stats();
  EXPECT_EQ(after.ops, before.ops + 1);
  EXPECT_LT(after.max_in_flight, before.max_in_flight);
  server.stop();
}

// Span sampling is a pure function of (seed, N, submission sequence):
// the sampled set must be identical at any worker count, with the
// pipeline on or off, and must equal what SpanSampler says directly.
TEST_F(WorkerSweepServe, SpanSamplingDeterministicAcrossWorkerCounts) {
  auto keys = workload::uniform_keys(200, 64, 61);
  workload::MixProfile mix;
  auto reqs = workload::request_stream(keys, 150, mix, 62);

  auto sampled_set = [&](std::size_t workers, bool pipelined) {
    ThreadPool::instance().set_workers(workers);
    pim::System sys(16, 5);
    pimtrie::Config cfg;
    cfg.seed = 11;
    pimtrie::PimTrie trie(sys, cfg);
    std::vector<std::uint64_t> vals(keys.size(), 1);
    trie.build(keys, vals);
    serve::Server::Options opt;
    opt.max_batch = 32;
    opt.max_delay = std::chrono::hours(2);
    opt.pipelined = pipelined;
    opt.lifecycle = serve::Server::Options::Toggle::kOn;
    opt.span_sample = 4;
    opt.span_seed = 7;
    serve::Server server(trie, opt);
    std::vector<std::future<serve::Response>> futs;
    futs.reserve(reqs.size());
    for (const auto& q : reqs)
      futs.push_back(server.submit(to_serve_op(q.op), q.key, q.value, q.tenant));
    server.drain();
    server.stop();
    std::vector<std::uint64_t> out;
    for (auto& f : futs) {
      serve::Response r = f.get();
      if (r.sampled) out.push_back(r.seq);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  // Single-threaded submission pins seq == submission index.
  std::vector<std::uint64_t> want;
  obs::SpanSampler ref(7, 4);
  for (std::uint64_t s = 0; s < reqs.size(); ++s)
    if (ref.sampled(s)) want.push_back(s);
  ASSERT_FALSE(want.empty());
  ASSERT_LT(want.size(), reqs.size());  // 1-in-4 really samples a subset

  for (std::size_t w : {std::size_t(1), std::size_t(4)})
    for (bool pipe : {false, true})
      EXPECT_EQ(sampled_set(w, pipe), want) << "workers=" << w << " pipelined=" << pipe;
}

// Lifecycle stamps are monotone and the four stage intervals tile
// [submit, done] exactly; tenant and batch ids are echoed faithfully
// (single-threaded submission + size-only closes pin batch assignment).
TEST(ServeLifecycle, StampsTileLatencyAndEchoTenantBatch) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 3;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(48, 64, 19);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 16;
  opt.max_delay = std::chrono::hours(2);
  opt.lifecycle = serve::Server::Options::Toggle::kOn;
  serve::Server server(trie, opt);
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 48; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, keys[i], 0, 1 + i % 3));
  server.drain();
  server.stop();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Response r = futs[i].get();
    EXPECT_EQ(r.seq, i);
    EXPECT_EQ(r.tenant, 1 + i % 3);
    EXPECT_EQ(r.batch, i / 16);
    EXPECT_GT(r.done_ms, 0.0);
    EXPECT_LE(r.t.submit_ms, r.t.close_ms);
    EXPECT_LE(r.t.close_ms, r.t.prep_ms);
    EXPECT_LE(r.t.prep_ms, r.t.exec_ms);
    EXPECT_LE(r.t.exec_ms, r.done_ms);
    double stages = (r.t.close_ms - r.t.submit_ms) + (r.t.prep_ms - r.t.close_ms) +
                    (r.t.exec_ms - r.t.prep_ms) + (r.done_ms - r.t.exec_ms);
    EXPECT_NEAR(stages, r.done_ms - r.t.submit_ms, 1e-6);
  }
}

// With lifecycle telemetry off (the default when neither env var is
// set), responses carry no stamps at all — the zero-overhead contract.
TEST(ServeLifecycle, OffByDefaultLeavesStampsZero) {
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 3;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(8, 64, 19);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.lifecycle = serve::Server::Options::Toggle::kOff;
  serve::Server server(trie, opt);
  auto f = server.submit(serve::Op::kLcp, keys[0], 0, 5);
  server.drain();
  server.stop();
  serve::Response r = f.get();
  EXPECT_EQ(r.t.submit_ms, 0.0);
  EXPECT_EQ(r.t.close_ms, 0.0);
  EXPECT_EQ(r.tenant, 0u);  // tenant label is telemetry-only
  EXPECT_FALSE(r.sampled);
  EXPECT_GT(r.done_ms, 0.0);  // done_ms predates the lifecycle work
}

// The metrics sink end to end: a skewed stream (one tenant hammering a
// single key) must produce parseable window/tenant JSON lines and a
// hot_key alert attributed to that tenant; a uniform stream fires none.
TEST(ServeMetrics, HotKeyAlertFiresUnderSkewNotUniform) {
  namespace json = ptrie::obs::json;
  struct Outcome {
    std::uint64_t stat_alerts = 0;
    std::size_t windows = 0, tenant_lines = 0;
    std::vector<json::Value> alerts;
    std::uint64_t tenant1_ops = 0;
  };
  auto run = [&](bool skewed) -> Outcome {
    pim::System sys(8, 3);
    pimtrie::Config cfg;
    cfg.seed = 5;
    pimtrie::PimTrie trie(sys, cfg);
    auto keys = workload::uniform_keys(64, 64, 29);
    std::vector<std::uint64_t> vals(keys.size(), 1);
    trie.build(keys, vals);

    std::string path =
        testing::TempDir() + (skewed ? "serve_metrics_skew.jsonl" : "serve_metrics_uni.jsonl");
    std::remove(path.c_str());

    serve::Server::Options opt;
    opt.max_batch = 16;
    opt.max_delay = std::chrono::hours(2);
    opt.lifecycle = serve::Server::Options::Toggle::kOn;
    opt.metrics_path = path;
    // Interval far beyond the run: only the final roll at stop() emits,
    // so exactly one window covers the whole stream.
    opt.metrics_interval = std::chrono::milliseconds(60'000);
    obs::AlertConfig ac;
    ac.hot_key_frac = 0.25;
    ac.module_imbalance = 1e9;  // isolate the hot-key detector
    ac.min_ops = 20;
    opt.alerts = ac;
    {
      serve::Server server(trie, opt);
      std::vector<std::future<serve::Response>> futs;
      for (std::size_t i = 0; i < 64; ++i)
        futs.push_back(server.submit(serve::Op::kGet, skewed ? keys[0] : keys[i], 0, 1));
      server.drain();
      server.stop();
      Outcome o;
      o.stat_alerts = server.stats().alerts;
      for (auto& f : futs) f.get();

      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        json::Value v;
        std::string err;
        EXPECT_TRUE(json::parse(line, v, err)) << err << "\n" << line;
        const json::Value* type = v.find("type");
        EXPECT_NE(type, nullptr);
        if (!type) continue;
        if (type->as_string() == "window") ++o.windows;
        if (type->as_string() == "tenant") {
          ++o.tenant_lines;
          if (v.find("tenant")->as_int() == 1)
            o.tenant1_ops = static_cast<std::uint64_t>(v.find("ops")->as_int());
        }
        if (type->as_string() == "alert") o.alerts.push_back(v);
      }
      std::remove(path.c_str());
      return o;
    }
  };

  Outcome skew = run(true);
  EXPECT_EQ(skew.windows, 1u);
  EXPECT_EQ(skew.tenant_lines, 1u);
  EXPECT_EQ(skew.tenant1_ops, 64u);
  ASSERT_GE(skew.alerts.size(), 1u);
  EXPECT_EQ(skew.stat_alerts, skew.alerts.size());
  for (const auto& a : skew.alerts) {
    EXPECT_EQ(a.find("kind")->as_string(), "hot_key");
    EXPECT_EQ(a.find("tenant")->as_int(), 1);
    EXPECT_GT(a.find("value")->as_double(), 0.25);
  }

  Outcome uni = run(false);
  EXPECT_EQ(uni.windows, 1u);
  EXPECT_EQ(uni.tenant1_ops, 64u);
  EXPECT_EQ(uni.alerts.size(), 0u);
  EXPECT_EQ(uni.stat_alerts, 0u);
}

// Sampled requests render as flames in the Chrome trace whose four
// stage children exactly tile the request parent, all on the dedicated
// serving process track (pid kServePid), with batch prep/exec spans on
// lane 0.
class ServeSpans : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Trace::instance().clear();
    obs::Trace::instance().force_enabled(true);
  }
  void TearDown() override {
    obs::Trace::instance().force_enabled(false);
    obs::Trace::instance().clear();
    ThreadPool::instance().set_workers(1);
  }
};

TEST_F(ServeSpans, FlameChildrenTileRequestParents) {
  namespace json = ptrie::obs::json;
  pim::System sys(8, 3);
  pimtrie::Config cfg;
  cfg.seed = 9;
  pimtrie::PimTrie trie(sys, cfg);
  auto keys = workload::uniform_keys(24, 64, 33);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  trie.build(keys, vals);

  serve::Server::Options opt;
  opt.max_batch = 8;
  opt.max_delay = std::chrono::hours(2);
  opt.lifecycle = serve::Server::Options::Toggle::kOn;
  opt.span_sample = 1;  // sample everything
  opt.span_seed = 1;
  {
    serve::Server server(trie, opt);
    std::vector<std::future<serve::Response>> futs;
    for (std::size_t i = 0; i < 24; ++i)
      futs.push_back(server.submit(serve::Op::kLcp, keys[i], 0, i % 2));
    server.drain();
    server.stop();
    for (auto& f : futs) EXPECT_TRUE(f.get().sampled);
  }

  std::string text = obs::Trace::instance().chrome_json();
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(text, root, err)) << err;
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::size_t n_req = 0, n_stage = 0, n_batch = 0;
  double req_us = 0, stage_us = 0;
  for (const auto& ev : events->arr) {
    const json::Value* pid = ev.find("pid");
    const json::Value* cat = ev.find("cat");
    if (!pid || pid->as_int() != static_cast<std::int64_t>(obs::kServePid)) continue;
    if (!cat || ev.find("ph")->as_string() != "X") continue;
    const std::string c = cat->as_string();
    if (c == "request") {
      ++n_req;
      req_us += ev.find("dur")->as_double();
      // Request lanes are 1..kSpanReqLanes; batches live on lane 0.
      std::int64_t tid = ev.find("tid")->as_int();
      EXPECT_GE(tid, 1);
      EXPECT_LE(tid, static_cast<std::int64_t>(obs::kSpanReqLanes));
    } else if (c == "stage") {
      ++n_stage;
      stage_us += ev.find("dur")->as_double();
    } else if (c == "batch") {
      ++n_batch;
      EXPECT_EQ(ev.find("tid")->as_int(), 0);
    }
  }
  EXPECT_EQ(n_req, 24u);
  EXPECT_EQ(n_stage, 4 * 24u);
  EXPECT_EQ(n_batch, 2 * 3u);  // prep + exec per batch, 3 batches of 8
  // The four children tile the parent; the JSON renders at 1ns
  // resolution, so allow a few ns of rounding per request.
  EXPECT_NEAR(stage_us, req_us, 0.1 * 24);
  EXPECT_GT(req_us, 0.0);
}

namespace {

// Small pre-built trie + server factory for the overload tests.
struct OverloadRig {
  pim::System sys{8, 3};
  pimtrie::PimTrie trie;
  std::vector<BitString> keys;

  explicit OverloadRig(std::uint64_t key_seed = 7)
      : trie(sys,
             [] {
               pimtrie::Config cfg;
               cfg.seed = 2;
               return cfg;
             }()),
        keys(workload::uniform_keys(64, 64, key_seed)) {
    std::vector<std::uint64_t> vals(keys.size(), 1);
    trie.build(keys, vals);
  }
};

}  // namespace

// With the pipeline paused, a fixed submission sequence produces exact,
// deterministic shed decisions: max_batch=1 turns every admitted submit
// into one backlog entry, so exactly max_backlog requests are admitted
// and the rest shed with per-tenant attribution.
TEST(ServeOverload, ShedPolicyDeterministicCounts) {
  OverloadRig rig;
  serve::Server::Options opt;
  opt.max_batch = 1;
  opt.max_delay = std::chrono::hours(2);
  opt.max_backlog = 4;
  opt.overload_policy = serve::OverloadPolicy::kShed;
  serve::Server server(rig.trie, opt);
  server.debug_pause_pipeline();

  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 10; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, rig.keys[i], 0, 3));
  // Shed futures resolve immediately, even while the pipeline is frozen.
  for (std::size_t i = 4; i < 10; ++i) {
    serve::Response r = futs[i].get();
    EXPECT_EQ(r.status, serve::Status::kShed) << i;
    EXPECT_EQ(r.error, "backlog full");
    EXPECT_EQ(r.seq, i);
  }
  server.debug_resume_pipeline();
  server.drain();
  auto st = server.stats();
  server.stop();
  for (std::size_t i = 0; i < 4; ++i) {
    serve::Response r = futs[i].get();
    EXPECT_EQ(r.status, serve::Status::kOk) << i;
    EXPECT_EQ(r.lcp, rig.keys[i].size());
  }
  EXPECT_EQ(st.shed, 6u);
  EXPECT_EQ(st.shed_deadline, 0u);
  EXPECT_EQ(st.ops, 4u);
  ASSERT_EQ(st.shed_by_tenant.size(), 1u);
  EXPECT_EQ(st.shed_by_tenant[0], (std::pair<std::uint32_t, std::uint64_t>{3u, 6u}));
}

// Backlog edges. max_backlog=0 under a shed policy is meaningful (shed
// everything — a drain valve); max_backlog=1 admits exactly one batch.
// Under kBlock, 0 still clamps to 1 (a zero-capacity blocking queue
// would deadlock).
TEST(ServeOverload, BacklogZeroAndOneEdges) {
  {
    OverloadRig rig;
    serve::Server::Options opt;
    opt.max_batch = 1;
    opt.max_delay = std::chrono::hours(2);
    opt.max_backlog = 0;
    opt.overload_policy = serve::OverloadPolicy::kShed;
    serve::Server server(rig.trie, opt);
    std::vector<std::future<serve::Response>> futs;
    for (std::size_t i = 0; i < 5; ++i)
      futs.push_back(server.submit(serve::Op::kLcp, rig.keys[i]));
    for (auto& f : futs) EXPECT_EQ(f.get().status, serve::Status::kShed);
    server.drain();  // nothing admitted: returns immediately
    auto st = server.stats();
    server.stop();
    EXPECT_EQ(st.shed, 5u);
    EXPECT_EQ(st.ops, 0u);
  }
  {
    OverloadRig rig;
    serve::Server::Options opt;
    opt.max_batch = 1;
    opt.max_delay = std::chrono::hours(2);
    opt.max_backlog = 1;
    opt.overload_policy = serve::OverloadPolicy::kShed;
    serve::Server server(rig.trie, opt);
    server.debug_pause_pipeline();
    auto ok = server.submit(serve::Op::kLcp, rig.keys[0]);
    auto shed = server.submit(serve::Op::kLcp, rig.keys[1]);
    EXPECT_EQ(shed.get().status, serve::Status::kShed);
    server.debug_resume_pipeline();
    server.drain();
    server.stop();
    EXPECT_EQ(ok.get().status, serve::Status::kOk);
  }
  {
    // kBlock + max_backlog=0: clamped, must not deadlock.
    OverloadRig rig;
    serve::Server::Options opt;
    opt.max_batch = 1;
    opt.max_delay = std::chrono::hours(2);
    opt.max_backlog = 0;
    opt.overload_policy = serve::OverloadPolicy::kBlock;
    serve::Server server(rig.trie, opt);
    auto f = server.submit(serve::Op::kLcp, rig.keys[0]);
    server.drain();
    server.stop();
    EXPECT_EQ(f.get().status, serve::Status::kOk);
  }
}

// A per-tenant cap keeps one hot tenant from consuming the whole
// backlog: its overflow sheds while another tenant still gets in.
TEST(ServeOverload, TenantCapShedsOnlyTheHotTenant) {
  OverloadRig rig;
  serve::Server::Options opt;
  opt.max_batch = 1;
  opt.max_delay = std::chrono::hours(2);
  opt.max_backlog = 8;
  opt.tenant_cap = 2;
  opt.overload_policy = serve::OverloadPolicy::kShed;
  serve::Server server(rig.trie, opt);
  server.debug_pause_pipeline();
  std::vector<std::future<serve::Response>> hot, cold;
  for (std::size_t i = 0; i < 5; ++i)
    hot.push_back(server.submit(serve::Op::kLcp, rig.keys[i], 0, 1));
  cold.push_back(server.submit(serve::Op::kLcp, rig.keys[9], 0, 2));
  server.debug_resume_pipeline();
  server.drain();
  auto st = server.stats();
  server.stop();
  EXPECT_EQ(hot[0].get().status, serve::Status::kOk);
  EXPECT_EQ(hot[1].get().status, serve::Status::kOk);
  for (std::size_t i = 2; i < 5; ++i) {
    serve::Response r = hot[i].get();
    EXPECT_EQ(r.status, serve::Status::kShed) << i;
    EXPECT_EQ(r.error, "tenant queue cap");
  }
  EXPECT_EQ(cold[0].get().status, serve::Status::kOk);
  ASSERT_EQ(st.shed_by_tenant.size(), 1u);
  EXPECT_EQ(st.shed_by_tenant[0].first, 1u);
  EXPECT_EQ(st.shed_by_tenant[0].second, 3u);
}

// Requests whose deadline passes while the pipeline is frozen are
// dropped at prepare time — before any host prep or PIM round — and
// resolve kDeadlineExceeded.
TEST(ServeOverload, DeadlineExpiresWhileQueued) {
  OverloadRig rig;
  serve::Server::Options opt;
  opt.max_batch = 1;
  opt.max_delay = std::chrono::hours(2);
  opt.max_backlog = 16;
  serve::Server server(rig.trie, opt);  // kBlock: expiry is policy-independent
  server.debug_pause_pipeline();
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 5; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, rig.keys[i], 0, 0, /*deadline_ms=*/1.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.debug_resume_pipeline();
  server.drain();
  auto st = server.stats();
  server.stop();
  for (auto& f : futs) {
    serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kDeadlineExceeded);
    EXPECT_EQ(r.error, "deadline expired while queued");
  }
  EXPECT_EQ(st.expired, 5u);
  EXPECT_EQ(st.ops, 0u);   // nothing reached execution
  EXPECT_EQ(st.shed, 0u);  // expiry is not admission shedding
}

// kDeadlineAware: once the batch-time EWMA is warm, a request whose
// deadline is far below the estimated queue wait is shed at submit.
TEST(ServeOverload, DeadlineAwareShedsUnmeetableDeadlines) {
  OverloadRig rig;
  serve::Server::Options opt;
  opt.max_batch = 1;
  opt.max_delay = std::chrono::hours(2);
  opt.max_backlog = 16;
  opt.overload_policy = serve::OverloadPolicy::kDeadlineAware;
  serve::Server server(rig.trie, opt);
  // Warm the EWMA with executed batches.
  for (std::size_t i = 0; i < 8; ++i)
    server.submit(serve::Op::kLcp, rig.keys[i]).wait();
  server.drain();
  // Freeze, queue three batches ahead, then ask for the impossible.
  server.debug_pause_pipeline();
  std::vector<std::future<serve::Response>> queued;
  for (std::size_t i = 0; i < 3; ++i)
    queued.push_back(server.submit(serve::Op::kLcp, rig.keys[i]));
  auto doomed = server.submit(serve::Op::kLcp, rig.keys[9], 0, 0, /*deadline_ms=*/1e-7);
  serve::Response r = doomed.get();  // resolves immediately, pipeline still frozen
  EXPECT_EQ(r.status, serve::Status::kShed);
  EXPECT_EQ(r.error, "deadline unmeetable");
  server.debug_resume_pipeline();
  server.drain();
  auto st = server.stats();
  server.stop();
  for (auto& f : queued) EXPECT_EQ(f.get().status, serve::Status::kOk);
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.shed_deadline, 1u);
}

// stop() is idempotent, safe to race from several threads, and a submit
// arriving at/after stop resolves kShed instead of hanging — including
// a submitter already blocked on kBlock backpressure.
TEST(ServeOverload, StopIsIdempotentAndConcurrentSubmitSheds) {
  OverloadRig rig;
  serve::Server::Options opt;
  opt.max_batch = 1;
  opt.max_delay = std::chrono::hours(2);
  opt.max_backlog = 1;
  opt.overload_policy = serve::OverloadPolicy::kBlock;
  serve::Server server(rig.trie, opt);
  server.debug_pause_pipeline();
  auto first = server.submit(serve::Op::kLcp, rig.keys[0]);  // fills the backlog
  std::thread blocked([&] {
    // Blocks on backpressure until stop() wakes it; must resolve kShed,
    // never wait on cv_space_ forever.
    EXPECT_EQ(server.submit(serve::Op::kLcp, rig.keys[1]).get().status,
              serve::Status::kShed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread racer([&] { server.stop(); });
  server.stop();
  racer.join();
  blocked.join();
  server.stop();  // idempotent after the fact
  EXPECT_EQ(first.get().status, serve::Status::kOk);  // queued work still drains
  serve::Response late = server.submit(serve::Op::kLcp, rig.keys[2]).get();
  EXPECT_EQ(late.status, serve::Status::kShed);
  EXPECT_EQ(late.error, "server stopping");
}

// Shed decisions are part of the deterministic contract: for a fixed
// submission sequence against a frozen pipeline, the per-request status
// vector and the shed accounting are byte-identical across worker
// counts and pipelined on/off.
TEST_F(WorkerSweepServe, ShedDecisionsWorkerInvariant) {
  auto run = [](std::size_t workers, bool pipelined) {
    ThreadPool::instance().set_workers(workers);
    OverloadRig rig;
    serve::Server::Options opt;
    opt.max_batch = 1;
    opt.max_delay = std::chrono::hours(2);
    opt.max_backlog = 3;
    opt.overload_policy = serve::OverloadPolicy::kShed;
    opt.pipelined = pipelined;
    serve::Server server(rig.trie, opt);
    server.debug_pause_pipeline();
    std::vector<std::future<serve::Response>> futs;
    for (std::size_t i = 0; i < 9; ++i)
      futs.push_back(server.submit(serve::Op::kLcp, rig.keys[i], 0, i % 2));
    server.debug_resume_pipeline();
    server.drain();
    auto st = server.stats();
    server.stop();
    std::vector<std::pair<serve::Status, std::size_t>> out;
    for (auto& f : futs) {
      serve::Response r = f.get();
      out.emplace_back(r.status, r.status == serve::Status::kOk ? r.lcp : 0);
    }
    return std::make_tuple(out, st.shed, st.shed_by_tenant);
  };
  auto want = run(1, false);
  EXPECT_EQ(std::get<1>(want), 6u);
  for (std::size_t w : {std::size_t(1), std::size_t(4)})
    for (bool pipe : {false, true})
      EXPECT_TRUE(run(w, pipe) == want) << "workers=" << w << " pipelined=" << pipe;
}

// Graceful degradation under an unrecoverable PIM fault: only the runs
// whose phase the plan targets fail (their requests resolve kFailed with
// the fault's context); sibling runs in the same batch answer correctly
// and the server keeps serving afterwards.
TEST(ServeFault, HardFaultFailsOnlyTargetedRunAndServerSurvives) {
  OverloadRig rig;
  {
    pim::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(pim::FaultPlan::parse("corrupt@phase=Serve/LCP,count=always", &plan, &err))
        << err;
    rig.sys.set_fault_plan(std::move(plan));
  }
  serve::Server::Options opt;
  opt.max_batch = 1 << 20;
  opt.max_delay = std::chrono::hours(2);
  opt.max_retries = 1;  // plumbs through to the System's retry budget
  serve::Server server(rig.trie, opt);

  std::vector<std::future<serve::Response>> lcps, gets;
  for (std::size_t i = 0; i < 6; ++i) {
    lcps.push_back(server.submit(serve::Op::kLcp, rig.keys[i]));
    gets.push_back(server.submit(serve::Op::kGet, rig.keys[i]));
  }
  server.flush();
  server.drain();
  for (auto& f : lcps) {
    serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kFailed);
    EXPECT_NE(r.error.find("module"), std::string::npos) << r.error;
  }
  for (auto& f : gets) {
    serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kOk);
    EXPECT_EQ(r.value.value_or(0), 1u);
  }
  auto st = server.stats();
  EXPECT_EQ(st.failed, 6u);
  EXPECT_GT(rig.sys.fault_stats().failed_rounds, 0u);

  // Clear the plan: the same server answers LCPs again.
  rig.sys.clear_fault_plan();
  auto ok = server.submit(serve::Op::kLcp, rig.keys[0]);
  server.flush();
  server.drain();
  server.stop();
  serve::Response r = ok.get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.lcp, rig.keys[0].size());
}

// A recoverable fault plan (count below the retry budget) must be
// invisible to answers: every request kOk, retries accounted, nothing
// failed.
TEST(ServeFault, RecoverableFaultsAreTransparent) {
  OverloadRig rig;
  {
    pim::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(pim::FaultPlan::parse("drop@phase=Serve/,count=2", &plan, &err)) << err;
    rig.sys.set_fault_plan(std::move(plan));
  }
  serve::Server::Options opt;
  opt.max_batch = 1 << 20;
  opt.max_delay = std::chrono::hours(2);
  opt.max_retries = 3;
  serve::Server server(rig.trie, opt);
  std::vector<std::future<serve::Response>> futs;
  for (std::size_t i = 0; i < 8; ++i)
    futs.push_back(server.submit(serve::Op::kLcp, rig.keys[i]));
  server.flush();
  server.drain();
  auto st = server.stats();
  server.stop();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Response r = futs[i].get();
    EXPECT_EQ(r.status, serve::Status::kOk) << i;
    EXPECT_EQ(r.lcp, rig.keys[i].size()) << i;
  }
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(rig.sys.fault_stats().retries, 0u);
  EXPECT_EQ(rig.sys.fault_stats().failed_rounds, 0u);
}

// The fuzz harness's serve adapter: schedules driven through the
// serving front-end must pass the same oracle, invariant, and envelope
// checks as the direct PimTrie adapter.
TEST(ServeFuzzAdapter, ScheduleSmoke) {
  check::GenParams gp;
  gp.n_batches = 10;
  gp.batch_cap = 10;
  gp.init_n = 32;
  check::CheckOptions opt;
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto sched = check::make_schedule("serve", seed % 2 ? "zipf" : "uniform", seed, gp);
    auto res = check::run_schedule(sched, opt);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.error;
    EXPECT_GT(res.checks, 0u);
  }
}
