// Unit tests: workload generators — determinism, distinctness, the
// structural properties each scenario promises, and wire helpers.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pimtrie/types.hpp"
#include "workload/generators.hpp"

namespace {

using ptrie::core::BitString;

template <class V>
std::set<std::string> as_set(const V& keys) {
  std::set<std::string> s;
  for (const auto& k : keys) s.insert(k.to_binary());
  return s;
}

TEST(Workload, UniformDistinctFixedLength) {
  auto keys = ptrie::workload::uniform_keys(500, 48, 1);
  EXPECT_EQ(as_set(keys).size(), 500u);
  for (const auto& k : keys) EXPECT_EQ(k.size(), 48u);
  // Deterministic by seed.
  auto again = ptrie::workload::uniform_keys(500, 48, 1);
  EXPECT_EQ(as_set(again), as_set(keys));
  auto other = ptrie::workload::uniform_keys(500, 48, 2);
  EXPECT_NE(as_set(other), as_set(keys));
}

TEST(Workload, VariableLengthInRange) {
  auto keys = ptrie::workload::variable_length_keys(400, 16, 90, 3);
  EXPECT_EQ(as_set(keys).size(), 400u);
  std::size_t mn = 1e9, mx = 0;
  for (const auto& k : keys) {
    mn = std::min(mn, k.size());
    mx = std::max(mx, k.size());
  }
  EXPECT_GE(mn, 16u);
  EXPECT_LE(mx, 90u);
  EXPECT_LT(mn, mx);  // actually variable
}

TEST(Workload, SharedPrefixReallyShared) {
  auto keys = ptrie::workload::shared_prefix_keys(100, 150, 30, 4);
  for (const auto& k : keys) EXPECT_EQ(k.size(), 180u);
  for (std::size_t i = 1; i < keys.size(); ++i)
    EXPECT_GE(keys[0].lcp(keys[i]), 150u);
}

TEST(Workload, CaterpillarNestedPrefixes) {
  auto keys = ptrie::workload::caterpillar_keys(50, 7, 5);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i].size(), (i + 1) * 7);
    if (i > 0) EXPECT_TRUE(keys[i - 1].is_prefix_of(keys[i]));
  }
}

TEST(Workload, ZipfDrawsFromData) {
  auto data = ptrie::workload::uniform_keys(200, 32, 6);
  auto qs = ptrie::workload::zipf_queries(data, 1000, 1.0, 7);
  auto dset = as_set(data);
  std::set<std::string> distinct;
  for (const auto& q : qs) {
    EXPECT_TRUE(dset.count(q.to_binary()));
    distinct.insert(q.to_binary());
  }
  // Skewed: far fewer distinct keys than draws, but more than a handful.
  EXPECT_LT(distinct.size(), 180u);
  EXPECT_GT(distinct.size(), 10u);
}

TEST(Workload, HotSpotConcentrates) {
  auto data = ptrie::workload::uniform_keys(200, 32, 8);
  auto qs = ptrie::workload::hot_spot_queries(data, 500, 9);
  std::set<std::string> distinct = as_set(qs);
  EXPECT_LE(distinct.size(), 8u);  // one key +- low-bit flips
}

TEST(Workload, Ipv4PrefixLengths) {
  auto keys = ptrie::workload::ipv4_prefixes(300, 10);
  EXPECT_EQ(as_set(keys).size(), 300u);
  for (const auto& k : keys) {
    EXPECT_GE(k.size(), 8u);
    EXPECT_LE(k.size(), 32u);
  }
}

TEST(Workload, UniformU64Distinct) {
  auto keys = ptrie::workload::uniform_u64(1000, 11);
  EXPECT_EQ(std::set<std::uint64_t>(keys.begin(), keys.end()).size(), 1000u);
}

// Tenant labeling on request streams: writes carry tenant 0, reads hash
// into 1..read_tenants stably by key — and the assignment consumes no
// randomness, so the (op, key, value) stream is bit-identical for a
// fixed seed no matter how read_tenants is set.
TEST(Workload, RequestStreamTenantsDeterministicAndSideEffectFree) {
  auto data = ptrie::workload::uniform_keys(300, 64, 5);
  ptrie::workload::MixProfile mix;  // read_tenants = 3
  auto reqs = ptrie::workload::request_stream(data, 500, mix, 77);
  ASSERT_EQ(reqs.size(), 500u);

  std::map<std::string, std::uint32_t> key_tenant;
  std::size_t writes = 0, reads = 0;
  for (const auto& r : reqs) {
    if (r.op == ptrie::workload::ReqOp::kInsert || r.op == ptrie::workload::ReqOp::kErase) {
      ++writes;
      EXPECT_EQ(r.tenant, 0u);
    } else {
      ++reads;
      EXPECT_GE(r.tenant, 1u);
      EXPECT_LE(r.tenant, mix.read_tenants);
      // Stable slices: the same key always maps to the same tenant.
      auto [it, fresh] = key_tenant.emplace(r.key.to_binary(), r.tenant);
      if (!fresh) {
        EXPECT_EQ(it->second, r.tenant) << "key changed tenant";
      }
    }
  }
  EXPECT_GT(writes, 0u);
  EXPECT_GT(reads, 0u);

  // With the default mix all three read tenants see traffic.
  std::set<std::uint32_t> read_tenants;
  for (const auto& r : reqs)
    if (r.tenant != 0) read_tenants.insert(r.tenant);
  EXPECT_EQ(read_tenants.size(), mix.read_tenants);

  // Changing read_tenants relabels but never perturbs ops/keys/values.
  ptrie::workload::MixProfile wide = mix;
  wide.read_tenants = 7;
  auto relabeled = ptrie::workload::request_stream(data, 500, wide, 77);
  ASSERT_EQ(relabeled.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(relabeled[i].op, reqs[i].op);
    EXPECT_TRUE(relabeled[i].key == reqs[i].key);
    EXPECT_EQ(relabeled[i].value, reqs[i].value);
  }
}

TEST(Wire, BufWriterReaderRoundTrip) {
  ptrie::pim::Buffer buf;
  ptrie::pimtrie::BufWriter w{buf};
  w.u64(42);
  BitString s = BitString::from_binary("101100111000101");
  w.bits(s);
  w.u64(7);
  ptrie::pimtrie::BufReader r{buf};
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(r.bits(), s);
  EXPECT_EQ(r.u64(), 7u);
  EXPECT_TRUE(r.done());
}

TEST(Wire, ReaderUnderrunThrows) {
  ptrie::pim::Buffer buf{1, 2};
  ptrie::pimtrie::BufReader r{buf};
  r.u64();
  r.u64();
  EXPECT_THROW(r.u64(), std::runtime_error);
  ptrie::pim::Buffer bad{1000};  // claims a 1000-bit string with no words
  ptrie::pimtrie::BufReader r2{bad};
  EXPECT_THROW(r2.bits(), std::runtime_error);
}

TEST(Wire, EmptyBitsRoundTrip) {
  ptrie::pim::Buffer buf;
  ptrie::pimtrie::BufWriter w{buf};
  w.bits(BitString());
  ptrie::pimtrie::BufReader r{buf};
  EXPECT_TRUE(r.bits().empty());
}

}  // namespace
