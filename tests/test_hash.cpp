// Unit tests: polynomial hash (associativity, Definitions 2/3), CRC64
// (incrementality + GF(2) combine), fingerprint truncation, hash table.

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/bitstring.hpp"
#include "core/rng.hpp"
#include "hash/crc64.hpp"
#include "hash/hash_table.hpp"
#include "hash/poly_hash.hpp"
#include "hash/prefix_hashes.hpp"

namespace {

using ptrie::core::BitString;
using ptrie::core::Rng;
using ptrie::hash::Crc64;
using ptrie::hash::HashTable;
using ptrie::hash::PolyHasher;

BitString random_bits(Rng& rng, std::size_t n) {
  BitString s;
  for (std::size_t i = 0; i < n; ++i) s.push_back(rng.coin());
  return s;
}

TEST(PolyHash, EmptyAndSingleBits) {
  PolyHasher h(1);
  EXPECT_EQ(h.hash(BitString()), h.empty());
  EXPECT_NE(h.hash(BitString::from_binary("0")), h.hash(BitString::from_binary("1")));
  // Leading-1 encoding: all-zero strings of different lengths differ.
  EXPECT_NE(h.hash(BitString::from_binary("0")), h.hash(BitString::from_binary("00")));
  EXPECT_NE(h.hash(BitString::from_binary("00")), h.empty());
}

TEST(PolyHash, ExtendMatchesDirect) {
  PolyHasher h(2);
  Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    BitString a = random_bits(rng, rng.below(200));
    BitString b = random_bits(rng, rng.below(200));
    BitString ab = a;
    ab.append(b);
    // Definition 2: h(AB) from h(A) and the bits of B.
    EXPECT_EQ(h.extend(h.hash(a), ab, a.size(), b.size()), h.hash(ab));
  }
}

TEST(PolyHash, CombineIsAssociativeIncremental) {
  PolyHasher h(3);
  Rng rng(12);
  for (int trial = 0; trial < 60; ++trial) {
    BitString a = random_bits(rng, rng.below(150));
    BitString b = random_bits(rng, rng.below(150));
    BitString c = random_bits(rng, rng.below(150));
    BitString ab = a;
    ab.append(b);
    BitString abc = ab;
    abc.append(c);
    // Definition 3: h(AB) = combine(h(A), h(B), |B|).
    EXPECT_EQ(h.combine(h.hash(a), h.hash(b), b.size()), h.hash(ab));
    // Associativity: combine(combine(a,b),c) == combine(a,combine(b,c)).
    auto left = h.combine(h.combine(h.hash(a), h.hash(b), b.size()), h.hash(c), c.size());
    auto right =
        h.combine(h.hash(a), h.combine(h.hash(b), h.hash(c), c.size()), b.size() + c.size());
    EXPECT_EQ(left, right);
    EXPECT_EQ(left, h.hash(abc));
  }
}

TEST(PolyHash, ExtendBitChain) {
  PolyHasher h(4);
  BitString s = BitString::from_binary("10110100111");
  auto acc = h.empty();
  for (std::size_t i = 0; i < s.size(); ++i) acc = h.extend_bit(acc, s.bit(i));
  EXPECT_EQ(acc, h.hash(s));
}

TEST(PolyHash, PivotHashesMatchPrefixes) {
  PolyHasher h(5);
  Rng rng(13);
  BitString s = random_bits(rng, 300);
  auto pivots = h.pivot_hashes(s, 64);
  ASSERT_EQ(pivots.size(), 300 / 64 + 1);
  for (std::size_t k = 0; k < pivots.size(); ++k)
    EXPECT_EQ(pivots[k], h.hash_prefix(s, k * 64));
}

TEST(PolyHash, PrefixHashesHelper) {
  PolyHasher h(6);
  Rng rng(14);
  BitString s = random_bits(rng, 257);
  ptrie::hash::PrefixHashes ph(h, s);
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 128u, 200u, 257u})
    EXPECT_EQ(ph.prefix(len), h.hash_prefix(s, len));
}

TEST(PolyHash, SeedsProduceDifferentFunctions) {
  PolyHasher h1(100), h2(101);
  BitString s = BitString::from_binary("1011001");
  EXPECT_NE(h1.hash(s), h2.hash(s));
}

TEST(PolyHash, FingerprintTruncationForcesCollisions) {
  PolyHasher h(7, /*fingerprint_bits=*/8);
  Rng rng(15);
  std::unordered_set<std::uint64_t> fps;
  bool collided = false;
  for (int i = 0; i < 1000 && !collided; ++i) {
    auto fp = h.fingerprint(h.hash(random_bits(rng, 64)));
    EXPECT_LT(fp, 256u);
    collided = !fps.insert(fp).second;
  }
  EXPECT_TRUE(collided);
}

TEST(PolyHash, CollisionRareAtFullWidth) {
  PolyHasher h(8);
  Rng rng(16);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 20'000; ++i)
    EXPECT_TRUE(seen.insert(h.hash(random_bits(rng, 40 + rng.below(40)))).second);
}

TEST(Crc64, MatchesBitwiseDefinition) {
  Crc64 crc;
  BitString s = BitString::from_binary("110100111010");
  auto st = crc.init();
  for (std::size_t i = 0; i < s.size(); ++i) st = crc.extend_bit(st, s.bit(i));
  EXPECT_EQ(crc.finish(st), crc.hash(s));
}

TEST(Crc64, IncrementalExtend) {
  Crc64 crc;
  Rng rng(17);
  BitString a = random_bits(rng, 90), b = random_bits(rng, 70);
  BitString ab = a;
  ab.append(b);
  auto st = crc.extend(crc.init(), a, 0, a.size());
  st = crc.extend(st, b, 0, b.size());
  EXPECT_EQ(crc.finish(st), crc.hash(ab));
}

TEST(Crc64, CombineMatchesConcatenation) {
  Crc64 crc;
  Rng rng(18);
  for (int trial = 0; trial < 30; ++trial) {
    BitString a = random_bits(rng, rng.below(120));
    BitString b = random_bits(rng, rng.below(120));
    BitString ab = a;
    ab.append(b);
    EXPECT_EQ(crc.combine(crc.hash(a), crc.hash(b), b.size()), crc.hash(ab))
        << "|a|=" << a.size() << " |b|=" << b.size();
  }
}

TEST(HashTable, InsertFindErase) {
  HashTable t;
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 11));  // already present
  EXPECT_EQ(t.find(1), std::optional<std::uint64_t>(10));
  t.upsert(1, 12);
  EXPECT_EQ(t.find(1), std::optional<std::uint64_t>(12));
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.find(1).has_value());
}

TEST(HashTable, GrowsAndKeepsAll) {
  HashTable t(4);
  Rng rng(19);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kvs;
  for (int i = 0; i < 5000; ++i) kvs.emplace_back(rng(), rng());
  for (auto [k, v] : kvs) t.upsert(k, v);
  for (auto [k, v] : kvs) EXPECT_EQ(t.find(k), std::optional<std::uint64_t>(v));
  EXPECT_EQ(t.size(), kvs.size());
}

TEST(HashTable, BackwardShiftDeletionKeepsChains) {
  HashTable t(8);
  // Insert colliding-ish keys, delete half, check the rest.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 200; ++i) keys.push_back(i * 1024);
  for (auto k : keys) t.insert(k, k + 1);
  for (std::size_t i = 0; i < keys.size(); i += 2) EXPECT_TRUE(t.erase(keys[i]));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0)
      EXPECT_FALSE(t.find(keys[i]).has_value());
    else
      EXPECT_EQ(t.find(keys[i]), std::optional<std::uint64_t>(keys[i] + 1));
  }
}

TEST(HashTable, BatchOps) {
  HashTable t;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kvs;
  for (std::uint64_t i = 0; i < 100; ++i) kvs.emplace_back(i * 7 + 1, i);
  t.batch_insert(kvs);
  std::vector<std::uint64_t> probe{1, 8, 9999};
  auto res = t.batch_find(probe);
  EXPECT_EQ(res[0], std::optional<std::uint64_t>(0));
  EXPECT_EQ(res[1], std::optional<std::uint64_t>(1));
  EXPECT_FALSE(res[2].has_value());
}

}  // namespace
