// Table 1, LCP row: IO rounds and communication per operation for the
// three approaches, across sweeps of key length l and machine size P.
//
// Paper predictions (per batch / per op):
//   Distributed Radix Tree : O(l/s) rounds,  O(l/s) words/op
//   Distributed x-fast trie: O(log l) rounds, O(log l) words/op  (l = O(w))
//   PIM-trie               : O(log P) rounds, O(l/w) words/op
//
// We report measured rounds and words/op, plus the paper's predicted
// growth driver, so the *shape* (who wins, how each scales in l and P)
// can be compared directly.

#include <cmath>

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const unsigned kSpan = 4;
  std::printf("Table 1 / LCP row reproduction (radix span s=%u, word w=64)\n", kSpan);

  // ---- sweep key length l at fixed P ----
  {
    bench::header("LCP vs key length l (P=16, n=2000 keys, batch=1000)",
                  {"l(bits)", "struct", "rounds", "words/op", "pred.rounds", "model_ms"});
    for (std::size_t l : {64, 256, 1024}) {
      std::size_t n = 2000, batch = 1000;
      auto keys = workload::uniform_keys(n, l, 1);
      auto queries = workload::zipf_queries(keys, batch / 2, 0.0, 2);
      for (auto& q : workload::miss_queries(batch / 2, l, 3)) queries.push_back(q);

      {
        pim::System sys(16, 10);
        baselines::DistributedRadixTree t(sys, kSpan);
        std::vector<std::uint64_t> vals(keys.size(), 1);
        t.build(keys, vals);
        auto c = bench::measure(sys, queries.size(), [&] { t.batch_lcp(queries); });
        bench::cell(l);
        bench::cell(std::string("radix"));
        bench::cell(c.rounds);
        bench::cell(c.words_per_op);
        bench::cell("l/s=" + std::to_string(l / kSpan));
        bench::cell(c.model_ms);
        bench::endrow();
      }
      if (l == 64) {  // x-fast supports only l = O(w)
        pim::System sys(16, 11);
        baselines::DistributedXFastTrie t(sys, 64);
        auto ik = workload::uniform_u64(n, 4);
        std::vector<std::uint64_t> vals(ik.size(), 1);
        t.build(ik, vals);
        auto iq = workload::uniform_u64(batch, 5);
        auto c = bench::measure(sys, iq.size(), [&] { t.batch_lcp(iq); });
        bench::cell(l);
        bench::cell(std::string("xfast"));
        bench::cell(c.rounds);
        bench::cell(c.words_per_op);
        bench::cell("log l=6");
        bench::cell(c.model_ms);
        bench::endrow();
      }
      {
        pim::System sys(16, 12);
        pimtrie::Config cfg;
        cfg.seed = 6;
        pimtrie::PimTrie t(sys, cfg);
        std::vector<std::uint64_t> vals(keys.size(), 1);
        t.build(keys, vals);
        auto c = bench::measure(sys, queries.size(), [&] { t.batch_lcp(queries); });
        bench::cell(l);
        bench::cell(std::string("pim-trie"));
        bench::cell(c.rounds);
        bench::cell(c.words_per_op);
        bench::cell("log P=4");
        bench::cell(c.model_ms);
        bench::endrow();
      }
    }
    std::printf("shape check: radix rounds grow ~l/s; x-fast ~log l; pim-trie rounds flat "
                "in l. pim-trie words/op grows ~l/64 (vs radix's ~l/4).\n");
  }

  // ---- sweep P at fixed l ----
  {
    bench::header("LCP vs machine size P (l=256, n=2000, batch=1000)",
                  {"P", "struct", "rounds", "words/op", "log2(P)", "model_ms"});
    for (std::size_t p : {4, 16, 64}) {
      std::size_t n = 2000, batch = 1000, l = 256;
      auto keys = workload::uniform_keys(n, l, 21);
      auto queries = workload::zipf_queries(keys, batch, 0.0, 22);
      {
        pim::System sys(p, 13);
        baselines::DistributedRadixTree t(sys, kSpan);
        std::vector<std::uint64_t> vals(keys.size(), 1);
        t.build(keys, vals);
        auto c = bench::measure(sys, queries.size(), [&] { t.batch_lcp(queries); });
        bench::cell(p);
        bench::cell(std::string("radix"));
        bench::cell(c.rounds);
        bench::cell(c.words_per_op);
        bench::cell(bench::fmt(std::log2(double(p)), 1));
        bench::cell(c.model_ms);
        bench::endrow();
      }
      {
        pim::System sys(p, 14);
        pimtrie::Config cfg;
        cfg.seed = 7;
        pimtrie::PimTrie t(sys, cfg);
        std::vector<std::uint64_t> vals(keys.size(), 1);
        t.build(keys, vals);
        auto c = bench::measure(sys, queries.size(), [&] { t.batch_lcp(queries); });
        bench::cell(p);
        bench::cell(std::string("pim-trie"));
        bench::cell(c.rounds);
        bench::cell(c.words_per_op);
        bench::cell(bench::fmt(std::log2(double(p)), 1));
        bench::cell(c.model_ms);
        bench::endrow();
      }
    }
    std::printf("shape check: pim-trie rounds track log P and stay far below radix's l/s; "
                "radix rounds are flat in P (pointer-chase depth is data-determined).\n");
  }
  return 0;
}
