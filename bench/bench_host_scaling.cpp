// Host-side scaling of the batch pipeline: wall-clock for batch build,
// batch LCP and batch insert while sweeping the worker count 1/2/4/8 via
// ThreadPool::set_workers (same effect as re-exec'ing with PTRIE_WORKERS).
//
// The model metrics (rounds, words, PIM time) are worker-count invariant
// by the determinism contract in core/parallel.hpp; this bench asserts
// that while measuring the host speedup. Speedup is relative to the
// 1-worker row and naturally tops out at the hardware thread count.
//
// PTRIE_BENCH_N overrides the key count (default 1M).

#include <cstdlib>
#include <cstring>

#include "common.hpp"
#include "core/parallel.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

namespace {

struct OpRow {
  double wall_ms = 0;
  std::size_t rounds = 0;
  std::uint64_t total_words = 0;
  std::uint64_t pim_time = 0;
  std::vector<std::size_t> lcp;  // query results, for the invariance check
};

OpRow run_pipeline(std::size_t n, const std::vector<core::BitString>& keys,
                   const std::vector<core::BitString>& extra,
                   const std::vector<core::BitString>& queries, int which) {
  pim::System sys(64, 42);
  pimtrie::Config cfg;
  cfg.seed = 9;
  pimtrie::PimTrie t(sys, cfg);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  OpRow row;
  if (which == 0) {  // build
    auto c = bench::measure(sys, n, [&] { t.build(keys, vals); });
    row.wall_ms = c.wall_ms;
    row.rounds = c.rounds;
    row.total_words = c.total_words;
    row.pim_time = c.pim_time;
    return row;
  }
  t.build(keys, vals);
  if (which == 1) {  // lcp
    auto c = bench::measure(sys, queries.size(), [&] { row.lcp = t.batch_lcp(queries); });
    row.wall_ms = c.wall_ms;
    row.rounds = c.rounds;
    row.total_words = c.total_words;
    row.pim_time = c.pim_time;
    return row;
  }
  // insert
  std::vector<std::uint64_t> evals(extra.size(), 2);
  auto c = bench::measure(sys, extra.size(), [&] { t.batch_insert(extra, evals); });
  row.wall_ms = c.wall_ms;
  row.rounds = c.rounds;
  row.total_words = c.total_words;
  row.pim_time = c.pim_time;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::size_t n = 1u << 20;
  if (const char* env = std::getenv("PTRIE_BENCH_N")) n = std::strtoull(env, nullptr, 10);
  const std::size_t kWorkerSweep[] = {1, 2, 4, 8};

  std::printf("Host batch-pipeline scaling (n=%zu keys, l=64 bits, P=64)\n", n);
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  auto keys = workload::uniform_keys(n, 64, 1);
  auto extra = workload::uniform_keys(n / 2, 64, 2);
  auto queries = workload::zipf_queries(keys, n / 2, 0.5, 3);

  const char* op_names[] = {"build", "lcp", "insert"};
  for (int which = 0; which < 3; ++which) {
    bench::header(op_names[which],
                  {"workers", "wall_ms", "speedup", "rounds", "words", "pim_time"});
    OpRow base;
    for (std::size_t w : kWorkerSweep) {
      core::ThreadPool::instance().set_workers(w);
      OpRow row = run_pipeline(n, keys, extra, queries, which);
      if (w == 1) base = row;
      // Worker-count invariance: the model metrics and (for lcp) the query
      // results must match the 1-worker run exactly.
      if (row.rounds != base.rounds || row.total_words != base.total_words ||
          row.pim_time != base.pim_time || row.lcp != base.lcp) {
        std::printf("DETERMINISM VIOLATION at workers=%zu (op=%s)\n", w, op_names[which]);
        return 1;
      }
      bench::cell(w);
      bench::cell(bench::fmt(row.wall_ms, 1));
      bench::cell(bench::fmt(row.wall_ms > 0 ? base.wall_ms / row.wall_ms : 0.0, 2));
      bench::cell(row.rounds);
      bench::cell(std::size_t(row.total_words));
      bench::cell(std::size_t(row.pim_time));
      bench::endrow();
    }
  }
  core::ThreadPool::instance().set_workers(1);
  std::printf("\nmodel metrics identical across worker counts: OK\n");
  return 0;
}
