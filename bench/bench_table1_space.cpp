// Table 1, space column: measured resident words per key.
//   radix    O(L_D/w + n_D)   (but with 2^s child-array overhead)
//   x-fast   O(L_D)           (one hash entry per level per key)
//   pim-trie O(L_D/w + n_D)   (Lemmas 4.2 + 4.7)

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Table 1 / space column reproduction (P=16, words per stored key)\n");
  bench::header("space vs key length (n=3000 uniform keys)",
                {"l(bits)", "radix w/key", "xfast w/key", "pimtrie w/key", "trie Q/key"});
  for (std::size_t l : {64, 256, 1024}) {
    std::size_t n = 3000;
    auto keys = workload::uniform_keys(n, l, 71);
    std::vector<std::uint64_t> vals(keys.size(), 1);

    double radix_per_key = 0, xfast_per_key = 0, pt_per_key = 0, q_per_key = 0;
    {
      pim::System sys(16, 81);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(keys, vals);
      radix_per_key = double(t.space_words()) / n;
    }
    if (l == 64) {
      pim::System sys(16, 82);
      baselines::DistributedXFastTrie t(sys, 64);
      auto ik = workload::uniform_u64(n, 72);
      std::vector<std::uint64_t> iv(ik.size(), 1);
      t.build(ik, iv);
      xfast_per_key = double(t.space_words()) / n;
    }
    {
      pim::System sys(16, 83);
      pimtrie::Config cfg;
      cfg.seed = 73;
      pimtrie::PimTrie t(sys, cfg);
      t.build(keys, vals);
      pt_per_key = double(t.space_words()) / n;
      // Information-theoretic trie payload Q_D = L_D/w + n_D for scale.
      trie::Patricia ref;
      for (std::size_t i = 0; i < n; ++i) ref.insert(keys[i], 1);
      q_per_key = double(ref.edge_bits_total() / 64 + ref.node_count()) / n;
    }
    bench::cell(l);
    bench::cell(radix_per_key);
    bench::cell(l == 64 ? xfast_per_key : 0.0);
    bench::cell(pt_per_key);
    bench::cell(q_per_key);
    bench::endrow();
  }
  std::printf("shape check: x-fast is ~l entries/key (O(L_D) words); radix pays the 2^s "
              "child-array factor; pim-trie stays within a constant factor of the "
              "compressed trie payload Q_D and flat-ish in l beyond the payload growth.\n");

  bench::header("space vs n (l=128)", {"n", "pimtrie w/key", "radix w/key"});
  for (std::size_t n : {1000, 4000, 16000}) {
    auto keys = workload::uniform_keys(n, 128, 74);
    std::vector<std::uint64_t> vals(keys.size(), 1);
    double pt = 0, rx = 0;
    {
      pim::System sys(16, 84);
      pimtrie::Config cfg;
      cfg.seed = 75;
      pimtrie::PimTrie t(sys, cfg);
      t.build(keys, vals);
      pt = double(t.space_words()) / n;
    }
    {
      pim::System sys(16, 85);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(keys, vals);
      rx = double(t.space_words()) / n;
    }
    bench::cell(n);
    bench::cell(pt);
    bench::cell(rx);
    bench::endrow();
  }
  std::printf("shape check: both linear in n (flat words/key).\n");
  return 0;
}
