// Ablation: block size K_B (paper default log^2 P words, Section 4.2).
// Too-small blocks inflate metadata and rounds; too-large blocks break
// the balls-into-bins balance precondition (K_B must stay
// O(Q_Q / (P log P)) for Lemma 2.1) and inflate push-pull transfers.

#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Ablation: block size bound K_B (P=16, n=4000, l=128, batch=2000)\n");
  bench::header("LCP cost vs K_B",
                {"K_B(words)", "blocks", "rounds", "words/op", "imbalance", "space w/key"});
  std::size_t n = 4000, batch = 2000, l = 128, p = 16;
  auto keys = workload::uniform_keys(n, l, 141);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  auto queries = workload::zipf_queries(keys, batch, 0.5, 142);

  for (std::size_t kb : {16, 32, 64, 256, 1024}) {
    pim::System sys(p, 143);
    pimtrie::Config cfg;
    cfg.seed = 144;
    cfg.kb = kb;
    pimtrie::PimTrie t(sys, cfg);
    t.build(keys, vals);
    auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
    bench::cell(kb);
    bench::cell(t.block_count());
    bench::cell(c.rounds);
    bench::cell(c.words_per_op);
    bench::cell(c.imbalance);
    bench::cell(double(t.space_words()) / n);
    bench::endrow();
  }
  std::printf("shape check: words/op and metadata space fall as K_B grows (fewer block "
              "roots to manage), while imbalance creeps up once single blocks become a "
              "meaningful fraction of a module's traffic — the paper's log^2 P default "
              "sits in the flat middle.\n");
  return 0;
}
