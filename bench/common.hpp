#pragma once
// Shared helpers for the paper-reproduction benchmarks: metric deltas
// per batch operation and aligned table printing. Every bench binary
// prints self-describing rows (CSV-ish) so EXPERIMENTS.md can quote them
// directly.
//
// Call bench::init(argc, argv) first thing in main:
//   --json <path>   additionally emit every table as structured JSON
//   --help          print the flags plus the recognized PTRIE_* env vars
// The JSON mirrors the printed tables cell for cell (typed: strings stay
// strings, numbers stay numbers) and appends the obs counter values, so
// scripts never have to scrape the aligned text output.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/json.hpp"
#include "pim/metrics.hpp"
#include "pim/system.hpp"

namespace bench {

struct OpCost {
  std::size_t rounds = 0;
  double words_per_op = 0;
  double io_time_per_op = 0;  // max-per-module words, summed over rounds
  double imbalance = 1.0;     // max/mean per-module words for the op
  std::uint64_t total_words = 0;
  std::uint64_t pim_time = 0;
  double wall_ms = 0;   // host wall-clock; the model metrics above stay machine-independent
  double model_ms = 0;  // modelled wall-clock (wallclock backend only; 0 elsewhere)

  static OpCost delta(const ptrie::pim::Metrics::Snapshot& before, ptrie::pim::System& sys,
                      std::size_t n_ops) {
    auto after = sys.metrics().snapshot();
    OpCost c;
    c.rounds = after.rounds - before.rounds;
    c.total_words = after.words - before.words;
    c.model_ms = double(after.modelled_ns - before.modelled_ns) / 1e6;
    c.words_per_op = n_ops ? double(c.total_words) / double(n_ops) : 0;
    c.io_time_per_op = n_ops ? double(after.io_time - before.io_time) / double(n_ops) : 0;
    c.pim_time = after.pim_time - before.pim_time;
    // Imbalance over the measured window only: per-module word deltas
    // between the snapshots (the cumulative ratio would smear in traffic
    // from construction and earlier ops).
    if (!before.module_words.empty() &&
        after.module_words.size() == before.module_words.size()) {
      std::uint64_t max = 0, sum = 0;
      for (std::size_t m = 0; m < after.module_words.size(); ++m) {
        std::uint64_t d = after.module_words[m] - before.module_words[m];
        sum += d;
        if (d > max) max = d;
      }
      double mean = after.module_words.empty()
                        ? 0.0
                        : double(sum) / double(after.module_words.size());
      c.imbalance = mean > 0 ? double(max) / mean : 1.0;
    }
    return c;
  }
};

// Wall-clock for an arbitrary host-side operation, in milliseconds.
template <class F>
double time_ms(F&& op) {
  auto t0 = std::chrono::steady_clock::now();
  op();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Measures one metered batch operation (model metrics + wall-clock).
template <class F>
OpCost measure(ptrie::pim::System& sys, std::size_t n_ops, F&& op) {
  auto before = sys.metrics().snapshot();
  double ms = time_ms(op);
  OpCost c = OpCost::delta(before, sys, n_ops);
  c.wall_ms = ms;
  return c;
}

// ---- structured output ------------------------------------------------

namespace detail {

// Mirrors the printed tables; flushed as JSON at exit when --json is set.
struct Reporter {
  struct Cell {
    enum class Kind { kString, kInt, kDouble } kind = Kind::kString;
    std::string s;
    std::size_t i = 0;
    double d = 0;
  };
  struct Table {
    std::string title;
    std::vector<std::string> cols;
    std::vector<std::vector<Cell>> rows;
  };
  // Full latency distributions, not just scalar percentiles: log2-spaced
  // buckets so report tooling can render latency-vs-load curves and
  // tail shapes without access to the raw samples.
  struct Histogram {
    std::string name;
    std::string unit;
    std::size_t count = 0;
    double min = 0, max = 0, mean = 0;
    double p50 = 0, p90 = 0, p95 = 0, p99 = 0;
    std::vector<double> bucket_le;         // upper bound per bucket
    std::vector<std::size_t> bucket_count;
  };
  std::string json_path;
  std::string binary;
  std::vector<Table> tables;
  std::vector<Histogram> hists;
  bool row_open = false;

  static Reporter& instance() {
    static Reporter r;
    return r;
  }

  void begin_table(const char* title, const std::vector<std::string>& cols) {
    tables.push_back({title, cols, {}});
    row_open = false;
  }
  void push(Cell c) {
    if (tables.empty()) return;  // cell() before any header(): print-only
    if (!row_open) {
      tables.back().rows.emplace_back();
      row_open = true;
    }
    tables.back().rows.back().push_back(std::move(c));
  }
  void end_row() { row_open = false; }

  void flush() {
    if (json_path.empty()) return;
    namespace json = ptrie::obs::json;
    std::string out = "{\n  \"binary\": " + json::escape(binary) + ",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables.size(); ++t) {
      const Table& tab = tables[t];
      out += t ? ",\n    {" : "\n    {";
      out += "\"title\": " + json::escape(tab.title) + ", \"columns\": [";
      for (std::size_t c = 0; c < tab.cols.size(); ++c)
        out += (c ? ", " : "") + json::escape(tab.cols[c]);
      out += "], \"rows\": [";
      for (std::size_t r = 0; r < tab.rows.size(); ++r) {
        out += r ? ",\n      [" : "\n      [";
        for (std::size_t c = 0; c < tab.rows[r].size(); ++c) {
          const Cell& cell = tab.rows[r][c];
          if (c) out += ", ";
          char buf[64];
          switch (cell.kind) {
            case Cell::Kind::kString: out += json::escape(cell.s); break;
            case Cell::Kind::kInt:
              std::snprintf(buf, sizeof buf, "%zu", cell.i);
              out += buf;
              break;
            case Cell::Kind::kDouble:
              std::snprintf(buf, sizeof buf, "%.6g", cell.d);
              out += buf;
              break;
          }
        }
        out += "]";
      }
      out += tab.rows.empty() ? "]}" : "\n    ]}";
    }
    out += tables.empty() ? "],\n" : "\n  ],\n";
    out += "  \"histograms\": [";
    for (std::size_t h = 0; h < hists.size(); ++h) {
      const Histogram& hg = hists[h];
      char buf[96];
      out += h ? ",\n    {" : "\n    {";
      out += "\"name\": " + json::escape(hg.name) + ", \"unit\": " + json::escape(hg.unit);
      std::snprintf(buf, sizeof buf,
                    ", \"count\": %zu, \"min\": %.6g, \"max\": %.6g, \"mean\": %.6g",
                    hg.count, hg.min, hg.max, hg.mean);
      out += buf;
      std::snprintf(buf, sizeof buf,
                    ", \"p50\": %.6g, \"p90\": %.6g, \"p95\": %.6g, \"p99\": %.6g",
                    hg.p50, hg.p90, hg.p95, hg.p99);
      out += buf;
      // Explicit bound pairs: bucket b covers (gt, le]; the first bucket
      // uses gt = -1 (i.e. everything at or below its `le`, which is 0 —
      // the exact-zero bucket of log2_buckets).
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < hg.bucket_le.size(); ++b) {
        std::snprintf(buf, sizeof buf, "{\"gt\": %.6g, \"le\": %.6g, \"count\": %zu}",
                      b ? hg.bucket_le[b - 1] : -1.0, hg.bucket_le[b], hg.bucket_count[b]);
        out += (b ? ", " : "") + std::string(buf);
      }
      out += "]}";
    }
    out += hists.empty() ? "],\n" : "\n  ],\n";
    out += "  \"counters\": {";
    auto counters = ptrie::obs::counters_snapshot();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)counters[i].second);
      out += (i ? ", " : "") + json::escape(counters[i].first) + ": " + buf;
    }
    out += "}\n}\n";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n", json_path.c_str());
    }
  }
};

inline void flush_at_exit() { Reporter::instance().flush(); }

}  // namespace detail

// Parses bench flags; call first in main(). Safe to skip (print-only).
inline void init(int argc, char** argv) {
  auto& rep = detail::Reporter::instance();
  rep.binary = argc > 0 ? argv[0] : "bench";
  if (auto pos = rep.binary.find_last_of('/'); pos != std::string::npos)
    rep.binary = rep.binary.substr(pos + 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--json <path>]\n\n", rep.binary.c_str());
      std::printf("  --json <path>  write the result tables + counters as JSON\n\n");
      ptrie::obs::env::dump(stdout);
      std::exit(0);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      rep.json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      rep.json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  if (!rep.json_path.empty()) std::atexit(detail::flush_at_exit);
}

inline void header(const char* title, const std::vector<std::string>& cols) {
  detail::Reporter::instance().begin_table(title, cols);
  std::printf("\n== %s ==\n", title);
  for (const auto& c : cols) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-16s", "----------");
  std::printf("\n");
}

inline void cell(const std::string& s) {
  detail::Reporter::instance().push({detail::Reporter::Cell::Kind::kString, s, 0, 0});
  std::printf("%-16s", s.c_str());
}
inline void cell(std::size_t v) {
  detail::Reporter::instance().push({detail::Reporter::Cell::Kind::kInt, {}, v, 0});
  std::printf("%-16zu", v);
}
inline void cell(double v) {
  detail::Reporter::instance().push({detail::Reporter::Cell::Kind::kDouble, {}, 0, v});
  std::printf("%-16.2f", v);
}
inline void endrow() {
  detail::Reporter::instance().end_row();
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

// ---- latency histograms ----------------------------------------------

inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * double(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - double(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

// Bucket scheme shared by histogram() and its tests: bucket 0 is the
// exact-zero bucket (le = 0, catching 0-valued samples explicitly), then
// log2-spaced upper bounds 1, 2, 4, ... up to the first power of two at
// or past the max sample. Bucket i > 0 covers (le[i-1], le[i]], so the
// emitted `le` list is a complete, explicit bound schema — consumers
// never have to re-derive the spacing. `sorted` must be ascending; the
// counts always sum to sorted.size().
inline void log2_buckets(const std::vector<double>& sorted, std::vector<double>* le,
                         std::vector<std::size_t>* count) {
  le->clear();
  count->clear();
  if (sorted.empty()) return;
  double max = sorted.back();
  le->push_back(0.0);
  double top = 1.0;
  while (top < max) top *= 2;
  for (double b = 1.0; b <= top; b *= 2) le->push_back(b);
  count->assign(le->size(), 0);
  std::size_t bi = 0;
  for (double v : sorted) {
    while (bi + 1 < le->size() && v > (*le)[bi]) ++bi;
    ++(*count)[bi];
  }
}

// Records a full distribution under `name` (log2-spaced buckets plus the
// standard percentiles) and prints a one-line summary. The samples reach
// the --json output as a "histograms" entry, so ptrie_report can render
// latency-vs-load curves without the raw data.
inline void histogram(const std::string& name, std::vector<double> values,
                      const char* unit = "us") {
  using detail::Reporter;
  Reporter::Histogram h;
  h.name = name;
  h.unit = unit;
  h.count = values.size();
  if (!values.empty()) {
    std::sort(values.begin(), values.end());
    h.min = values.front();
    h.max = values.back();
    double sum = 0;
    for (double v : values) sum += v;
    h.mean = sum / double(values.size());
    h.p50 = percentile_sorted(values, 50);
    h.p90 = percentile_sorted(values, 90);
    h.p95 = percentile_sorted(values, 95);
    h.p99 = percentile_sorted(values, 99);
    log2_buckets(values, &h.bucket_le, &h.bucket_count);
  }
  std::printf("  hist %-28s n=%zu  p50=%.1f%s p90=%.1f%s p99=%.1f%s max=%.1f%s\n",
              name.c_str(), h.count, h.p50, unit, h.p90, unit, h.p99, unit, h.max, unit);
  Reporter::instance().hists.push_back(std::move(h));
}

}  // namespace bench
