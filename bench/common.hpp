#pragma once
// Shared helpers for the paper-reproduction benchmarks: metric deltas
// per batch operation and aligned table printing. Every bench binary
// prints self-describing rows (CSV-ish) so EXPERIMENTS.md can quote them
// directly.
//
// Call bench::init(argc, argv) first thing in main:
//   --json <path>   additionally emit every table as structured JSON
//   --help          print the flags plus the recognized PTRIE_* env vars
// The JSON mirrors the printed tables cell for cell (typed: strings stay
// strings, numbers stay numbers) and appends the obs counter values, so
// scripts never have to scrape the aligned text output.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/json.hpp"
#include "pim/metrics.hpp"
#include "pim/system.hpp"

namespace bench {

struct OpCost {
  std::size_t rounds = 0;
  double words_per_op = 0;
  double io_time_per_op = 0;  // max-per-module words, summed over rounds
  double imbalance = 1.0;     // max/mean per-module words for the op
  std::uint64_t total_words = 0;
  std::uint64_t pim_time = 0;
  double wall_ms = 0;  // host wall-clock; the model metrics above stay machine-independent

  static OpCost delta(const ptrie::pim::Metrics::Snapshot& before, ptrie::pim::System& sys,
                      std::size_t n_ops) {
    auto after = sys.metrics().snapshot();
    OpCost c;
    c.rounds = after.rounds - before.rounds;
    c.total_words = after.words - before.words;
    c.words_per_op = n_ops ? double(c.total_words) / double(n_ops) : 0;
    c.io_time_per_op = n_ops ? double(after.io_time - before.io_time) / double(n_ops) : 0;
    c.pim_time = after.pim_time - before.pim_time;
    // Imbalance over the measured window only: per-module word deltas
    // between the snapshots (the cumulative ratio would smear in traffic
    // from construction and earlier ops).
    if (!before.module_words.empty() &&
        after.module_words.size() == before.module_words.size()) {
      std::uint64_t max = 0, sum = 0;
      for (std::size_t m = 0; m < after.module_words.size(); ++m) {
        std::uint64_t d = after.module_words[m] - before.module_words[m];
        sum += d;
        if (d > max) max = d;
      }
      double mean = after.module_words.empty()
                        ? 0.0
                        : double(sum) / double(after.module_words.size());
      c.imbalance = mean > 0 ? double(max) / mean : 1.0;
    }
    return c;
  }
};

// Wall-clock for an arbitrary host-side operation, in milliseconds.
template <class F>
double time_ms(F&& op) {
  auto t0 = std::chrono::steady_clock::now();
  op();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Measures one metered batch operation (model metrics + wall-clock).
template <class F>
OpCost measure(ptrie::pim::System& sys, std::size_t n_ops, F&& op) {
  auto before = sys.metrics().snapshot();
  double ms = time_ms(op);
  OpCost c = OpCost::delta(before, sys, n_ops);
  c.wall_ms = ms;
  return c;
}

// ---- structured output ------------------------------------------------

namespace detail {

// Mirrors the printed tables; flushed as JSON at exit when --json is set.
struct Reporter {
  struct Cell {
    enum class Kind { kString, kInt, kDouble } kind = Kind::kString;
    std::string s;
    std::size_t i = 0;
    double d = 0;
  };
  struct Table {
    std::string title;
    std::vector<std::string> cols;
    std::vector<std::vector<Cell>> rows;
  };
  std::string json_path;
  std::string binary;
  std::vector<Table> tables;
  bool row_open = false;

  static Reporter& instance() {
    static Reporter r;
    return r;
  }

  void begin_table(const char* title, const std::vector<std::string>& cols) {
    tables.push_back({title, cols, {}});
    row_open = false;
  }
  void push(Cell c) {
    if (tables.empty()) return;  // cell() before any header(): print-only
    if (!row_open) {
      tables.back().rows.emplace_back();
      row_open = true;
    }
    tables.back().rows.back().push_back(std::move(c));
  }
  void end_row() { row_open = false; }

  void flush() {
    if (json_path.empty()) return;
    namespace json = ptrie::obs::json;
    std::string out = "{\n  \"binary\": " + json::escape(binary) + ",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables.size(); ++t) {
      const Table& tab = tables[t];
      out += t ? ",\n    {" : "\n    {";
      out += "\"title\": " + json::escape(tab.title) + ", \"columns\": [";
      for (std::size_t c = 0; c < tab.cols.size(); ++c)
        out += (c ? ", " : "") + json::escape(tab.cols[c]);
      out += "], \"rows\": [";
      for (std::size_t r = 0; r < tab.rows.size(); ++r) {
        out += r ? ",\n      [" : "\n      [";
        for (std::size_t c = 0; c < tab.rows[r].size(); ++c) {
          const Cell& cell = tab.rows[r][c];
          if (c) out += ", ";
          char buf[64];
          switch (cell.kind) {
            case Cell::Kind::kString: out += json::escape(cell.s); break;
            case Cell::Kind::kInt:
              std::snprintf(buf, sizeof buf, "%zu", cell.i);
              out += buf;
              break;
            case Cell::Kind::kDouble:
              std::snprintf(buf, sizeof buf, "%.6g", cell.d);
              out += buf;
              break;
          }
        }
        out += "]";
      }
      out += tab.rows.empty() ? "]}" : "\n    ]}";
    }
    out += tables.empty() ? "],\n" : "\n  ],\n";
    out += "  \"counters\": {";
    auto counters = ptrie::obs::counters_snapshot();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)counters[i].second);
      out += (i ? ", " : "") + json::escape(counters[i].first) + ": " + buf;
    }
    out += "}\n}\n";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n", json_path.c_str());
    }
  }
};

inline void flush_at_exit() { Reporter::instance().flush(); }

}  // namespace detail

// Parses bench flags; call first in main(). Safe to skip (print-only).
inline void init(int argc, char** argv) {
  auto& rep = detail::Reporter::instance();
  rep.binary = argc > 0 ? argv[0] : "bench";
  if (auto pos = rep.binary.find_last_of('/'); pos != std::string::npos)
    rep.binary = rep.binary.substr(pos + 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--json <path>]\n\n", rep.binary.c_str());
      std::printf("  --json <path>  write the result tables + counters as JSON\n\n");
      ptrie::obs::env::dump(stdout);
      std::exit(0);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      rep.json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      rep.json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  if (!rep.json_path.empty()) std::atexit(detail::flush_at_exit);
}

inline void header(const char* title, const std::vector<std::string>& cols) {
  detail::Reporter::instance().begin_table(title, cols);
  std::printf("\n== %s ==\n", title);
  for (const auto& c : cols) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-16s", "----------");
  std::printf("\n");
}

inline void cell(const std::string& s) {
  detail::Reporter::instance().push({detail::Reporter::Cell::Kind::kString, s, 0, 0});
  std::printf("%-16s", s.c_str());
}
inline void cell(std::size_t v) {
  detail::Reporter::instance().push({detail::Reporter::Cell::Kind::kInt, {}, v, 0});
  std::printf("%-16zu", v);
}
inline void cell(double v) {
  detail::Reporter::instance().push({detail::Reporter::Cell::Kind::kDouble, {}, 0, v});
  std::printf("%-16.2f", v);
}
inline void endrow() {
  detail::Reporter::instance().end_row();
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace bench
