#pragma once
// Shared helpers for the paper-reproduction benchmarks: metric deltas
// per batch operation and aligned table printing. Every bench binary
// prints self-describing rows (CSV-ish) so EXPERIMENTS.md can quote them
// directly.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "pim/metrics.hpp"
#include "pim/system.hpp"

namespace bench {

struct OpCost {
  std::size_t rounds = 0;
  double words_per_op = 0;
  double io_time_per_op = 0;  // max-per-module words, summed over rounds
  double imbalance = 1.0;     // max/mean per-module words for the op
  std::uint64_t total_words = 0;
  std::uint64_t pim_time = 0;
  double wall_ms = 0;  // host wall-clock; the model metrics above stay machine-independent

  static OpCost delta(const ptrie::pim::Metrics::Snapshot& before, ptrie::pim::System& sys,
                      std::size_t n_ops) {
    auto after = sys.metrics().snapshot();
    OpCost c;
    c.rounds = after.rounds - before.rounds;
    c.total_words = after.words - before.words;
    c.words_per_op = n_ops ? double(c.total_words) / double(n_ops) : 0;
    c.io_time_per_op = n_ops ? double(after.io_time - before.io_time) / double(n_ops) : 0;
    c.pim_time = after.pim_time - before.pim_time;
    c.imbalance = sys.metrics().comm_imbalance();
    return c;
  }
};

// Wall-clock for an arbitrary host-side operation, in milliseconds.
template <class F>
double time_ms(F&& op) {
  auto t0 = std::chrono::steady_clock::now();
  op();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Measures one metered batch operation (model metrics + wall-clock).
template <class F>
OpCost measure(ptrie::pim::System& sys, std::size_t n_ops, F&& op) {
  auto before = sys.metrics().snapshot();
  double ms = time_ms(op);
  OpCost c = OpCost::delta(before, sys, n_ops);
  c.wall_ms = ms;
  return c;
}

inline void header(const char* title, const std::vector<std::string>& cols) {
  std::printf("\n== %s ==\n", title);
  for (const auto& c : cols) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-16s", "----------");
  std::printf("\n");
}

inline void cell(const std::string& s) { std::printf("%-16s", s.c_str()); }
inline void cell(std::size_t v) { std::printf("%-16zu", v); }
inline void cell(double v) { std::printf("%-16.2f", v); }
inline void endrow() { std::printf("\n"); }

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace bench
