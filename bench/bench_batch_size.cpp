// The minimum-batch-size condition (Theorems 4.3/5.1 require batch size
// Q_Q = Omega(P log^5 P) for whp balance): balance and amortized
// communication as the batch shrinks below / grows past the threshold.

#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Batch-size sensitivity (P=16, n=4000, l=64, zipf-0.99 queries)\n");
  bench::header("LCP vs batch size",
                {"batch", "rounds", "words/op", "iotime/op", "imbalance"});
  std::size_t n = 4000, l = 64, p = 16;
  auto keys = workload::uniform_keys(n, l, 131);
  std::vector<std::uint64_t> vals(keys.size(), 1);

  pim::System sys(p, 132);
  pimtrie::Config cfg;
  cfg.seed = 133;
  pimtrie::PimTrie t(sys, cfg);
  t.build(keys, vals);

  for (std::size_t batch : {16, 64, 256, 1024, 4096}) {
    auto queries = workload::zipf_queries(keys, batch, 0.99, 134 + batch);
    auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
    bench::cell(batch);
    bench::cell(c.rounds);
    bench::cell(c.words_per_op);
    bench::cell(c.io_time_per_op);
    bench::cell(c.imbalance);
    bench::endrow();
  }
  std::printf("shape check: tiny batches cannot balance (few messages over P modules -> "
              "high max/mean) and amortize worse; past the threshold words/op levels "
              "off and imbalance approaches 1 — the paper's minimum-batch condition.\n");
  return 0;
}
