// Query-trie construction and hashing cost (Lemmas 4.1, 4.4, 4.9):
// google-benchmark micro sweeps over batch size and key length for
// Algorithm 1 (sort -> adjacent LCP -> Patricia) plus node hashing.

#include <benchmark/benchmark.h>

#include "hash/poly_hash.hpp"
#include "trie/query_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

static void BM_QueryTrieBuild(benchmark::State& state) {
  std::size_t n = state.range(0);
  std::size_t l = state.range(1);
  auto keys = workload::uniform_keys(n, l, 191);
  hash::PolyHasher h(192);
  for (auto _ : state) {
    auto qt = trie::build_query_trie(keys, h);
    benchmark::DoNotOptimize(qt.trie.node_count());
  }
  state.SetComplexityN(n);
  state.counters["bits/key"] = double(l);
}
BENCHMARK(BM_QueryTrieBuild)
    ->Args({256, 64})
    ->Args({1024, 64})
    ->Args({4096, 64})
    ->Args({1024, 256})
    ->Args({1024, 1024});

static void BM_StringSort(benchmark::State& state) {
  std::size_t n = state.range(0);
  auto keys = workload::uniform_keys(n, 128, 193);
  for (auto _ : state) {
    auto copy = keys;
    auto perm = trie::string_sort(copy);
    benchmark::DoNotOptimize(perm.size());
  }
}
BENCHMARK(BM_StringSort)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_AdjacentLcp(benchmark::State& state) {
  auto keys = workload::uniform_keys(state.range(0), 256, 194);
  std::sort(keys.begin(), keys.end());
  for (auto _ : state) {
    auto lcp = trie::adjacent_lcp(keys);
    benchmark::DoNotOptimize(lcp.size());
  }
}
BENCHMARK(BM_AdjacentLcp)->Arg(1024)->Arg(4096);

static void BM_PivotHashing(benchmark::State& state) {
  // Lemma 4.4/4.9: hashing a batch at word granularity.
  std::size_t l = state.range(0);
  auto keys = workload::uniform_keys(512, l, 195);
  hash::PolyHasher h(196);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& k : keys) acc ^= h.pivot_hashes(k, 64).back();
    benchmark::DoNotOptimize(acc);
  }
  state.counters["bits/key"] = double(l);
}
BENCHMARK(BM_PivotHashing)->Arg(64)->Arg(512)->Arg(4096);

BENCHMARK_MAIN();
