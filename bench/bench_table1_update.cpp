// Table 1, Insert/Delete row: amortized IO rounds and communication per
// update for the distributed radix tree vs PIM-trie (x-fast shown for
// 64-bit keys only, insert-only).
//
// Paper predictions: radix O(l/s) rounds + O(l/s) words/op; x-fast
// O(log l) rounds + O(l) words/op; PIM-trie O(log P) amortized rounds +
// O(l/w) amortized words/op (maintenance included).

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  const unsigned kSpan = 4;
  std::printf("Table 1 / Insert+Delete row reproduction (amortized over batches)\n");

  bench::header("Insert, then Delete (P=16, base n=2000, 4 update batches of 500)",
                {"l(bits)", "struct", "op", "rounds/batch", "words/op"});
  for (std::size_t l : {64, 256}) {
    std::size_t n = 2000, batch = 500;
    auto base = workload::uniform_keys(n, l, 31);
    std::vector<std::uint64_t> bvals(base.size(), 1);

    {  // radix: insert only (deletion not supported by this strawman)
      pim::System sys(16, 41);
      baselines::DistributedRadixTree t(sys, kSpan);
      t.build(base, bvals);
      std::size_t rounds = 0;
      std::uint64_t words = 0;
      for (int b = 0; b < 4; ++b) {
        auto extra = workload::uniform_keys(batch, l, 100 + b);
        std::vector<std::uint64_t> evals(extra.size(), 2);
        auto c = bench::measure(sys, extra.size(), [&] { t.batch_insert(extra, evals); });
        rounds += c.rounds;
        words += c.total_words;
      }
      bench::cell(l);
      bench::cell(std::string("radix"));
      bench::cell(std::string("insert"));
      bench::cell(rounds / 4);
      bench::cell(double(words) / (4 * batch));
      bench::endrow();
    }
    if (l == 64) {  // x-fast insert: one round, O(l) words per key
      pim::System sys(16, 42);
      baselines::DistributedXFastTrie t(sys, 64);
      auto ik = workload::uniform_u64(n, 32);
      std::vector<std::uint64_t> vals(ik.size(), 1);
      t.build(ik, vals);
      std::size_t rounds = 0;
      std::uint64_t words = 0;
      for (int b = 0; b < 4; ++b) {
        auto extra = workload::uniform_u64(batch, 200 + b);
        std::vector<std::uint64_t> evals(extra.size(), 2);
        auto c = bench::measure(sys, extra.size(), [&] { t.batch_insert(extra, evals); });
        rounds += c.rounds;
        words += c.total_words;
      }
      bench::cell(l);
      bench::cell(std::string("xfast"));
      bench::cell(std::string("insert"));
      bench::cell(rounds / 4);
      bench::cell(double(words) / (4 * batch));
      bench::endrow();
    }
    {  // pim-trie: insert then delete, amortized with maintenance
      pim::System sys(16, 43);
      pimtrie::Config cfg;
      cfg.seed = 33;
      pimtrie::PimTrie t(sys, cfg);
      t.build(base, bvals);
      std::size_t rounds = 0;
      std::uint64_t words = 0;
      std::vector<std::vector<core::BitString>> batches;
      for (int b = 0; b < 4; ++b)
        batches.push_back(workload::uniform_keys(batch, l, 300 + b));
      for (auto& extra : batches) {
        std::vector<std::uint64_t> evals(extra.size(), 2);
        auto c = bench::measure(sys, extra.size(), [&] { t.batch_insert(extra, evals); });
        rounds += c.rounds;
        words += c.total_words;
      }
      bench::cell(l);
      bench::cell(std::string("pim-trie"));
      bench::cell(std::string("insert"));
      bench::cell(rounds / 4);
      bench::cell(double(words) / (4 * batch));
      bench::endrow();

      rounds = 0;
      words = 0;
      for (auto& extra : batches) {
        auto c = bench::measure(sys, extra.size(), [&] { t.batch_erase(extra); });
        rounds += c.rounds;
        words += c.total_words;
      }
      bench::cell(l);
      bench::cell(std::string("pim-trie"));
      bench::cell(std::string("delete"));
      bench::cell(rounds / 4);
      bench::cell(double(words) / (4 * batch));
      bench::endrow();
    }
  }
  std::printf("shape check: radix insert rounds ~l/s and words/op ~l/s; x-fast words/op "
              "~l (one entry per level); pim-trie rounds ~log P with words/op ~l/64.\n");
  return 0;
}
