// Substrate micro-benchmarks (google-benchmark): bitstring kernels,
// polynomial hash, hash table, Patricia ops, fast tries, the two-layer
// index, and the Euler-tour partition.

#include <benchmark/benchmark.h>

#include "core/bitstring.hpp"
#include "core/rng.hpp"
#include "fasttrie/second_layer.hpp"
#include "fasttrie/xfast.hpp"
#include "fasttrie/yfast.hpp"
#include "fasttrie/zfast.hpp"
#include "hash/crc64.hpp"
#include "hash/hash_table.hpp"
#include "hash/poly_hash.hpp"
#include "trie/euler_partition.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

using namespace ptrie;
using core::BitString;

static void BM_BitStringLcp(benchmark::State& state) {
  auto keys = workload::shared_prefix_keys(2, state.range(0), 32, 201);
  for (auto _ : state) benchmark::DoNotOptimize(keys[0].lcp(keys[1]));
}
BENCHMARK(BM_BitStringLcp)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_BitStringAppend(benchmark::State& state) {
  auto keys = workload::uniform_keys(2, state.range(0), 202);
  for (auto _ : state) {
    BitString s = keys[0];
    s.append(keys[1]);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_BitStringAppend)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_PolyHash(benchmark::State& state) {
  hash::PolyHasher h(203);
  auto keys = workload::uniform_keys(1, state.range(0), 204);
  for (auto _ : state) benchmark::DoNotOptimize(h.hash(keys[0]));
  state.SetBytesProcessed(state.iterations() * state.range(0) / 8);
}
BENCHMARK(BM_PolyHash)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_PolyHashCombine(benchmark::State& state) {
  hash::PolyHasher h(205);
  auto a = h.hash(workload::uniform_keys(1, 500, 206)[0]);
  auto b = h.hash(workload::uniform_keys(1, 700, 207)[0]);
  for (auto _ : state) benchmark::DoNotOptimize(h.combine(a, b, 700));
}
BENCHMARK(BM_PolyHashCombine);

static void BM_Crc64Hash(benchmark::State& state) {
  // The alternative Definition-2/3 hash: bit-serial CRC (a real DPU
  // would use its CRC unit; this shows the software cost profile).
  hash::Crc64 crc;
  auto keys = workload::uniform_keys(1, state.range(0), 220);
  for (auto _ : state) benchmark::DoNotOptimize(crc.hash(keys[0]));
  state.SetBytesProcessed(state.iterations() * state.range(0) / 8);
}
BENCHMARK(BM_Crc64Hash)->Arg(64)->Arg(1024);

static void BM_Crc64Combine(benchmark::State& state) {
  hash::Crc64 crc;
  auto a = crc.hash(workload::uniform_keys(1, 500, 221)[0]);
  auto b = crc.hash(workload::uniform_keys(1, 700, 222)[0]);
  for (auto _ : state) benchmark::DoNotOptimize(crc.combine(a, b, 700));
}
BENCHMARK(BM_Crc64Combine);

static void BM_HashTableLookup(benchmark::State& state) {
  hash::HashTable t;
  core::Rng rng(208);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    keys.push_back(rng());
    t.insert(keys.back(), i);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_HashTableLookup);

static void BM_PatriciaInsert(benchmark::State& state) {
  auto keys = workload::uniform_keys(state.range(0), 128, 209);
  for (auto _ : state) {
    trie::Patricia t;
    for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
    benchmark::DoNotOptimize(t.key_count());
  }
}
BENCHMARK(BM_PatriciaInsert)->Arg(256)->Arg(2048);

static void BM_PatriciaBulkBuild(benchmark::State& state) {
  auto keys = workload::uniform_keys(state.range(0), 128, 210);
  std::sort(keys.begin(), keys.end());
  std::vector<std::size_t> lcp(keys.size(), 0);
  for (std::size_t i = 1; i < keys.size(); ++i) lcp[i] = keys[i - 1].lcp(keys[i]);
  for (auto _ : state) {
    auto t = trie::Patricia::build_sorted(keys, lcp);
    benchmark::DoNotOptimize(t.key_count());
  }
}
BENCHMARK(BM_PatriciaBulkBuild)->Arg(256)->Arg(2048);

static void BM_PatriciaLcpQuery(benchmark::State& state) {
  auto keys = workload::uniform_keys(4096, 128, 211);
  trie::Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(t.lcp(keys[i++ % keys.size()]).first);
}
BENCHMARK(BM_PatriciaLcpQuery);

static void BM_XFastPred(benchmark::State& state) {
  fasttrie::XFastTrie t(64);
  auto keys = workload::uniform_u64(20000, 212);
  for (auto k : keys) t.insert(k);
  core::Rng rng(213);
  for (auto _ : state) benchmark::DoNotOptimize(t.pred(rng()));
}
BENCHMARK(BM_XFastPred);

static void BM_YFastPred(benchmark::State& state) {
  fasttrie::YFastTrie t(64);
  auto keys = workload::uniform_u64(20000, 214);
  for (auto k : keys) t.insert(k);
  core::Rng rng(215);
  for (auto _ : state) benchmark::DoNotOptimize(t.pred(rng()));
}
BENCHMARK(BM_YFastPred);

static void BM_ZFastLocate(benchmark::State& state) {
  hash::PolyHasher h(216);
  auto keys = workload::caterpillar_keys(state.range(0), 8, 217);
  trie::Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  fasttrie::ZFastTrie z(t, h);
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(z.locate(keys[i++ % keys.size()]).first);
  state.counters["height_bits"] = double(keys.size() * 8);
}
BENCHMARK(BM_ZFastLocate)->Arg(64)->Arg(512);

static void BM_SecondLayerQuery(benchmark::State& state) {
  fasttrie::SecondLayerIndex idx(64);
  core::Rng rng(218);
  for (int i = 0; i < 500; ++i) {
    BitString s;
    for (std::size_t b = 0, n = rng.below(63); b < n; ++b) s.push_back(rng.coin());
    idx.insert(s, i);
  }
  BitString q;
  for (int b = 0; b < 64; ++b) q.push_back(rng.coin());
  for (auto _ : state) benchmark::DoNotOptimize(idx.query(q));
}
BENCHMARK(BM_SecondLayerQuery);

static void BM_EulerPartition(benchmark::State& state) {
  auto keys = workload::uniform_keys(state.range(0), 128, 219);
  trie::Patricia t;
  for (std::size_t i = 0; i < keys.size(); ++i) t.insert(keys[i], i);
  auto weight = [&](trie::NodeId id) -> std::uint64_t {
    return 8 + t.node(id).edge.word_count();
  };
  for (auto _ : state) {
    auto part = trie::euler_partition(t, weight, 64);
    benchmark::DoNotOptimize(part.roots.size());
  }
}
BENCHMARK(BM_EulerPartition)->Arg(1024)->Arg(8192);

BENCHMARK_MAIN();
