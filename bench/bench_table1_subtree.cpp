// Table 1, Subtree row: the distributed radix tree needs up to O(n_D)
// IO rounds (one BFS level per round), while PIM-trie answers in
// O(log P) rounds with O((l + L_S)/w + n_S) communication.
//
// Worst case for the radix baseline is a deep result subtree (the
// caterpillar shape); we sweep result sizes on both shapes.

#include "baselines/distributed_radix_tree.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Table 1 / Subtree row reproduction (P=16)\n");

  bench::header("SubtreeQuery rounds vs data shape",
                {"shape", "struct", "result_keys", "rounds", "words/result"});

  struct Case {
    const char* name;
    std::vector<core::BitString> keys;
    core::BitString prefix;
  };
  std::vector<Case> cases;
  {
    // Uniform: shallow bushy subtree.
    auto keys = workload::uniform_keys(3000, 64, 51);
    cases.push_back({"uniform", keys, keys[0].prefix(4)});
  }
  {
    // Caterpillar: deep path — the radix baseline's O(n_D)-round case.
    auto keys = workload::caterpillar_keys(400, 8, 52);
    cases.push_back({"caterpillar", keys, keys[0].prefix(8)});
  }

  for (auto& c : cases) {
    std::vector<std::uint64_t> vals(c.keys.size());
    for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i;
    std::size_t result_size = 0;
    {
      pim::System sys(16, 61);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(c.keys, vals);
      std::size_t res = 0;
      auto cost = bench::measure(sys, 1, [&] {
        auto r = t.batch_subtree({c.prefix});
        res = r[0].size();
      });
      result_size = res;
      bench::cell(std::string(c.name));
      bench::cell(std::string("radix"));
      bench::cell(res);
      bench::cell(cost.rounds);
      bench::cell(res ? double(cost.total_words) / res : 0.0);
      bench::endrow();
    }
    {
      pim::System sys(16, 62);
      pimtrie::Config cfg;
      cfg.seed = 53;
      pimtrie::PimTrie t(sys, cfg);
      t.build(c.keys, vals);
      std::size_t res = 0;
      auto cost = bench::measure(sys, 1, [&] {
        auto r = t.batch_subtree({c.prefix});
        res = r[0].size();
      });
      bench::cell(std::string(c.name));
      bench::cell(std::string("pim-trie"));
      bench::cell(res);
      bench::cell(cost.rounds);
      bench::cell(res ? double(cost.total_words) / res : 0.0);
      bench::endrow();
      if (res != result_size)
        std::printf("  !! result size mismatch vs radix (%zu vs %zu)\n", res, result_size);
    }
  }
  std::printf("shape check: radix rounds explode on the deep (caterpillar) subtree — one "
              "round per tree level — while pim-trie stays at O(log P) rounds on both "
              "shapes; words/result stays O(1)-ish for both (result must be shipped).\n");
  return 0;
}
