// Ordered-operation cost model: Predecessor/Successor and bounded
// RangeScan/TopKByPrefix on PIM-trie vs the bitstring baselines. The
// headline claims this bench pins down:
//   - pred/succ cost two match passes + one bounded descent: rounds stay
//     O(log P), independent of where the neighbor lives;
//   - RangeScan rounds are independent of the scan width (the cover is
//     resolved in one batched sweep) — only words/op grows, linearly
//     with the keys shipped back;
//   - the radix baseline pays its per-level rounds, the range-partitioned
//     baseline stays flat but ships whole candidate modules.
// All printed columns except wall-clock are deterministic model metrics,
// so ci/perf_gate.sh replays this binary against BENCH_ordered.json.

#include <algorithm>

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/range_partitioned.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

namespace {

constexpr std::size_t kP = 16;
constexpr std::size_t kKeys = 4000;
constexpr std::size_t kQueries = 256;
constexpr std::size_t kScans = 32;

struct Fixture {
  std::vector<core::BitString> keys;    // unsorted, as built
  std::vector<core::BitString> sorted;  // ascending, for width-controlled scans
  std::vector<std::uint64_t> vals;
  std::vector<core::BitString> queries;
};

Fixture make_fixture() {
  Fixture f;
  // 64-bit keys: chunk-aligned for the span-4 radix baseline, so all
  // three structures answer the identical exact queries.
  f.keys = workload::uniform_keys(kKeys, 64, 71);
  f.vals.resize(f.keys.size());
  for (std::size_t i = 0; i < f.vals.size(); ++i) f.vals[i] = i;
  f.sorted = f.keys;
  std::sort(f.sorted.begin(), f.sorted.end());
  f.queries = workload::zipf_queries(f.keys, kQueries / 2, 0.9, 72);
  for (auto& q : workload::miss_queries(kQueries - f.queries.size(), 64, 73))
    f.queries.push_back(q);
  return f;
}

// One row of the pred/succ table for an already-built structure.
template <class F>
void neighbor_row(pim::System& sys, const char* stname, const char* opname,
                  std::size_t n, F&& run) {
  auto cost = bench::measure(sys, n, run);
  bench::cell(std::string(stname));
  bench::cell(std::string(opname));
  bench::cell(cost.rounds);
  bench::cell(cost.words_per_op);
  bench::cell(cost.model_ms);
  bench::endrow();
}

// One row of the scan table: `run` executes the batch of kScans scans
// and returns the total number of keys it shipped back.
template <class F>
void scan_row(pim::System& sys, const char* stname, std::size_t width, F&& run) {
  std::size_t result_keys = 0;
  auto cost = bench::measure(sys, kScans, [&] { result_keys = run(); });
  bench::cell(std::string(stname));
  bench::cell(width);
  bench::cell(result_keys);
  bench::cell(cost.rounds);
  bench::cell(cost.words_per_op);
  bench::cell(result_keys ? double(cost.total_words) / double(result_keys) : 0.0);
  bench::cell(cost.model_ms);
  bench::endrow();
}

// Width-controlled scan bounds: kScans disjoint windows of `width`
// consecutive sorted keys, spread across the key space.
void scan_bounds(const Fixture& f, std::size_t width, std::vector<core::BitString>* los,
                 std::vector<core::BitString>* his, std::vector<std::size_t>* limits) {
  los->clear();
  his->clear();
  limits->clear();
  std::size_t stride = f.sorted.size() / kScans;
  for (std::size_t s = 0; s < kScans; ++s) {
    std::size_t lo = s * stride;
    std::size_t hi = std::min(lo + width - 1, f.sorted.size() - 1);
    los->push_back(f.sorted[lo]);
    his->push_back(f.sorted[hi]);
    limits->push_back(f.sorted.size());  // unbounded: measure the full width
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Ordered operations cost model (P=%zu, n=%zu, %zu queries, %zu scans)\n",
              kP, kKeys, kQueries, kScans);
  Fixture f = make_fixture();

  bench::header("Predecessor/Successor (batch of 256)",
                {"struct", "op", "rounds", "words/op", "model_ms"});
  {
    pim::System sys(kP, 74);
    pimtrie::Config cfg;
    cfg.seed = 75;
    pimtrie::PimTrie t(sys, cfg);
    t.build(f.keys, f.vals);
    neighbor_row(sys, "pim-trie", "pred", f.queries.size(),
                 [&] { t.batch_pred(f.queries); });
    neighbor_row(sys, "pim-trie", "succ", f.queries.size(),
                 [&] { t.batch_succ(f.queries); });
  }
  {
    pim::System sys(kP, 74);
    baselines::DistributedRadixTree t(sys, 4);
    t.build(f.keys, f.vals);
    neighbor_row(sys, "radix", "pred", f.queries.size(),
                 [&] { t.batch_pred(f.queries); });
    neighbor_row(sys, "radix", "succ", f.queries.size(),
                 [&] { t.batch_succ(f.queries); });
  }
  {
    pim::System sys(kP, 74);
    baselines::RangePartitionedIndex t(sys);
    t.build(f.keys, f.vals);
    neighbor_row(sys, "range-part", "pred", f.queries.size(),
                 [&] { t.batch_pred(f.queries); });
    neighbor_row(sys, "range-part", "succ", f.queries.size(),
                 [&] { t.batch_succ(f.queries); });
  }

  bench::header("RangeScan rounds/words vs scan width (32 scans each)",
                {"struct", "width", "result_keys", "rounds", "words/op", "words/result",
                 "model_ms"});
  static const std::size_t kWidths[] = {16, 256, 2048};
  for (std::size_t width : kWidths) {
    std::vector<core::BitString> los, his;
    std::vector<std::size_t> limits;
    scan_bounds(f, width, &los, &his, &limits);
    auto total = [](const auto& lists) {
      std::size_t n = 0;
      for (const auto& l : lists) n += l.size();
      return n;
    };
    {
      pim::System sys(kP, 76);
      pimtrie::Config cfg;
      cfg.seed = 75;
      pimtrie::PimTrie t(sys, cfg);
      t.build(f.keys, f.vals);
      scan_row(sys, "pim-trie", width,
               [&] { return total(t.batch_range(los, his, limits)); });
    }
    {
      pim::System sys(kP, 76);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(f.keys, f.vals);
      scan_row(sys, "radix", width,
               [&] { return total(t.batch_range(los, his, limits)); });
    }
    {
      pim::System sys(kP, 76);
      baselines::RangePartitionedIndex t(sys);
      t.build(f.keys, f.vals);
      scan_row(sys, "range-part", width,
               [&] { return total(t.batch_range(los, his, limits)); });
    }
  }

  bench::header("TopKByPrefix (32 queries, 8-bit prefixes, k=32)",
                {"struct", "result_keys", "rounds", "words/op", "model_ms"});
  {
    std::vector<core::BitString> prefixes;
    std::vector<std::size_t> ks;
    for (std::size_t s = 0; s < kScans; ++s) {
      prefixes.push_back(f.sorted[s * (f.sorted.size() / kScans)].prefix(8));
      ks.push_back(32);
    }
    auto total = [](const auto& lists) {
      std::size_t n = 0;
      for (const auto& l : lists) n += l.size();
      return n;
    };
    {
      pim::System sys(kP, 77);
      pimtrie::Config cfg;
      cfg.seed = 75;
      pimtrie::PimTrie t(sys, cfg);
      t.build(f.keys, f.vals);
      std::size_t res = 0;
      auto cost = bench::measure(sys, kScans, [&] { res = total(t.batch_topk(prefixes, ks)); });
      bench::cell(std::string("pim-trie"));
      bench::cell(res);
      bench::cell(cost.rounds);
      bench::cell(cost.words_per_op);
      bench::cell(cost.model_ms);
      bench::endrow();
    }
    {
      pim::System sys(kP, 77);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(f.keys, f.vals);
      std::size_t res = 0;
      auto cost = bench::measure(sys, kScans, [&] { res = total(t.batch_topk(prefixes, ks)); });
      bench::cell(std::string("radix"));
      bench::cell(res);
      bench::cell(cost.rounds);
      bench::cell(cost.words_per_op);
      bench::cell(cost.model_ms);
      bench::endrow();
    }
  }

  std::printf(
      "shape check: pred/succ and every scan width resolve in O(log P)-bounded "
      "rounds on pim-trie — widening the scan 128x moves words/op, not rounds, "
      "and words/result falls toward O(1) as cover overhead amortizes. The "
      "radix baseline pays per-level rounds and per-level traffic on the same "
      "covers. The range-partitioned baseline looks cheapest here by design — "
      "uniform keys are its best case; its skew collapse is bench_load_balance's "
      "story, not this one.\n");
  return 0;
}
