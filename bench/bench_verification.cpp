// Verification / collision handling (Section 4.4.3): shrink the hash
// fingerprints to force collisions and measure (a) that results stay
// correct (rejected-collision + redo machinery), and (b) the extra
// rounds/communication the redo path costs.

#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "trie/patricia.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Verification under forced hash collisions (P=8, n=2000, batch=1000)\n");
  bench::header("LCP with truncated fingerprints",
                {"fp bits", "wrong answers", "rejections", "redo rounds", "rounds",
                 "words/op"});
  std::size_t n = 2000, batch = 1000;
  auto keys = workload::uniform_keys(n, 96, 181);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  auto queries = workload::zipf_queries(keys, batch / 2, 0.0, 182);
  for (auto& q : workload::miss_queries(batch / 2, 96, 183)) queries.push_back(q);

  trie::Patricia ref;
  for (std::size_t i = 0; i < n; ++i) ref.insert(keys[i], 1);

  for (unsigned bits : {61, 16, 10, 6, 4, 3}) {
    pim::System sys(8, 184);
    pimtrie::Config cfg;
    cfg.seed = 185;
    cfg.fingerprint_bits = bits;
    pimtrie::PimTrie t(sys, cfg);
    t.build(keys, vals);
    std::vector<std::size_t> got;
    auto c = bench::measure(sys, batch, [&] { got = t.batch_lcp(queries); });
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < queries.size(); ++i)
      if (got[i] != ref.lcp(queries[i]).first) ++wrong;
    bench::cell(std::size_t(bits));
    bench::cell(wrong);
    bench::cell(std::size_t(t.verify_stats().rejected_collisions));
    bench::cell(std::size_t(t.verify_stats().redo_rounds));
    bench::cell(c.rounds);
    bench::cell(c.words_per_op);
    bench::endrow();
  }
  std::printf("shape check: as fingerprints shrink, rejected collisions (and sometimes "
              "redo rounds) climb while answers stay correct — the S_last / bit-by-bit "
              "verification of Section 4.4.3 absorbing false positives. At very small "
              "widths residual wrong answers can appear when two distinct strings agree "
              "on both the fingerprint and the w-bit S_last (the paper's whp residue).\n");
  return 0;
}
