// Serving-mode benchmark (ROADMAP item 1): open-loop clients replay a
// mixed read/write request stream against the streaming front-end and we
// measure throughput, latency percentiles (vs offered load), the
// pipeline-overlap ratio, and the batch-size distribution.
//
// Three dispatch modes over the SAME request stream:
//   per-request : every request is its own batch (the library status quo
//                 for serving individual concurrent requests — each op
//                 pays the full per-batch round overhead)
//   coalesced   : size/deadline coalescing, prepare and execute in
//                 sequence on one thread
//   pipelined   : coalescing plus the prepare(k+1) / execute(k) overlap
//
// All three produce byte-identical answers (arrival order is preserved
// and preparation is state-independent); only batching and scheduling
// differ. The final table replays fixed-size batches from a single
// client so its model metrics (rounds, words/op, pim_time) are exactly
// reproducible — that table is what ci/perf_gate.sh checks.
//
// The latency modes run with request-lifecycle telemetry forced on, so
// every response carries its submit/close/prep/exec stamps and the bench
// prints a per-stage latency breakdown (wall-clock, never gated). When
// PTRIE_TRACE / PTRIE_METRICS are set, the same runs also export span
// flames and per-tenant window snapshots — that is the CI observability
// smoke (ci/check.sh). Telemetry never issues rounds, so model metrics
// are identical with it on or off.
//
// Flags (besides the common --json):
//   --ops N         requests per mode/load point      (default 3000)
//   --clients C     open-loop client threads          (default 4)
//   --rates a,b,..  offered loads in ops/s, 0 = saturating (default
//                   20000,60000,0)
//   --theta T       Zipf skew of the read key ranks   (default 0.99;
//                   1.5 concentrates load for the skew-alert smoke)
//   --policy P      overload policy for the latency modes: block
//                   (default, lossless), shed, deadline
//   --backlog N     admission backlog cap (0 = library default)
//   --deadline-ms D per-request deadline (0 = none; give deadlines to
//                   requests so --policy deadline has estimates to shed)
//   --quick         CI smoke: fewer ops, two load points
//
// Under the defaults (block policy, no deadlines) sheds are impossible:
// every request is answered exactly as before the overload work — the
// shed column is constant 0 and all answers are byte-identical.

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/trace.hpp"
#include "pimtrie/pim_trie.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

namespace {

struct Cfg {
  std::size_t ops = 3000;
  std::size_t clients = 4;
  std::vector<double> rates = {20000, 60000, 0};
  double theta = 0.99;
  serve::OverloadPolicy policy = serve::OverloadPolicy::kBlock;
  std::size_t backlog = 0;     // 0 = keep Options default
  double deadline_ms = 0;      // 0 = requests carry no deadline
  bool quick = false;
};

serve::Op to_serve_op(workload::ReqOp op) {
  return static_cast<serve::Op>(static_cast<std::uint8_t>(op));
}

struct RunResult {
  double ops_per_sec = 0;
  double p50_us = 0, p99_us = 0;
  serve::Server::Stats stats;
  std::vector<double> lat_us;
  // Per-stage service latencies from the lifecycle stamps (telemetry is
  // forced on for latency modes), measured submit -> done.
  std::vector<double> queue_us, coalesce_us, prep_us, exec_us;
  // Answers, for cross-mode identity checking.
  std::vector<std::size_t> lcps;
  std::vector<std::uint64_t> gets;  // value or ~0 for miss
};

// Replays `reqs` open-loop at `rate` ops/s (0 = as fast as possible)
// from cfg.clients threads, round-robin by request index so the global
// submission order tracks the arrival schedule.
RunResult run_mode(pimtrie::PimTrie& trie, const std::vector<workload::Request>& reqs,
                   const Cfg& cfg, serve::Server::Options opt, double rate) {
  serve::Server server(trie, opt);
  auto arrivals = rate > 0 ? workload::poisson_arrivals(reqs.size(), rate, 42)
                           : std::vector<std::uint64_t>(reqs.size(), 0);

  std::vector<double> sched_ms(reqs.size(), 0);
  std::vector<std::future<serve::Response>> futs(reqs.size());
  auto t_base = server.start_time() + std::chrono::milliseconds(2);

  auto client = [&](std::size_t c) {
    for (std::size_t i = c; i < reqs.size(); i += cfg.clients) {
      auto at = t_base + std::chrono::nanoseconds(arrivals[i]);
      if (rate > 0) std::this_thread::sleep_until(at);
      // Open loop: latency is measured from the *scheduled* arrival so
      // queueing delay (coordinated omission) is charged to the server.
      // At saturating load there is no schedule; use the submit instant.
      sched_ms[i] =
          rate > 0
              ? std::chrono::duration<double, std::milli>(at - server.start_time()).count()
              : server.now_ms();
      futs[i] = server.submit(to_serve_op(reqs[i].op), reqs[i].key, reqs[i].value,
                              reqs[i].tenant, cfg.deadline_ms);
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < cfg.clients; ++c) threads.emplace_back(client, c);
  for (auto& t : threads) t.join();
  server.drain();

  RunResult r;
  r.lat_us.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    serve::Response resp = futs[i].get();
    r.lat_us.push_back(std::max(0.0, resp.done_ms - sched_ms[i]) * 1000.0);
    if (resp.t.submit_ms > 0 || resp.t.close_ms > 0) {
      r.queue_us.push_back((resp.t.close_ms - resp.t.submit_ms) * 1000.0);
      r.coalesce_us.push_back((resp.t.prep_ms - resp.t.close_ms) * 1000.0);
      r.prep_us.push_back((resp.t.exec_ms - resp.t.prep_ms) * 1000.0);
      r.exec_us.push_back((resp.done_ms - resp.t.exec_ms) * 1000.0);
    }
    if (resp.op == serve::Op::kLcp) r.lcps.push_back(resp.lcp);
    if (resp.op == serve::Op::kGet) r.gets.push_back(resp.value.value_or(~0ull));
  }
  r.stats = server.stats();
  server.stop();
  if (r.stats.span_ms > 0) r.ops_per_sec = double(reqs.size()) / (r.stats.span_ms / 1000.0);
  std::vector<double> sorted = r.lat_us;
  std::sort(sorted.begin(), sorted.end());
  r.p50_us = bench::percentile_sorted(sorted, 50);
  r.p99_us = bench::percentile_sorted(sorted, 99);
  return r;
}

std::string rate_label(double rate) {
  if (rate <= 0) return "max";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0fk", rate / 1000.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Cfg cfg;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      cfg.ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      cfg.clients = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rates") == 0 && i + 1 < argc) {
      cfg.rates.clear();
      for (const char* p = argv[++i]; *p;) {
        cfg.rates.push_back(std::strtod(p, const_cast<char**>(&p)));
        if (*p == ',') ++p;
      }
    } else if (std::strcmp(argv[i], "--theta") == 0 && i + 1 < argc) {
      cfg.theta = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      std::string p = argv[++i];
      if (p == "block") {
        cfg.policy = serve::OverloadPolicy::kBlock;
      } else if (p == "shed") {
        cfg.policy = serve::OverloadPolicy::kShed;
      } else if (p == "deadline") {
        cfg.policy = serve::OverloadPolicy::kDeadlineAware;
      } else {
        std::fprintf(stderr, "--policy %s: expected block, shed, or deadline\n", p.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backlog") == 0 && i + 1 < argc) {
      cfg.backlog = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      cfg.deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.quick = true;
    } else {
      fwd.push_back(argv[i]);
    }
  }
  bench::init(static_cast<int>(fwd.size()), fwd.data());
  if (cfg.quick) {
    cfg.ops = std::min<std::size_t>(cfg.ops, 600);
    cfg.rates = {30000, 0};
  }
  cfg.clients = std::max<std::size_t>(1, cfg.clients);

  const std::size_t kP = 32, kN = 6000, kBits = 64;
  std::printf("serving bench: P=%zu modules, n=%zu keys, %zu ops/mode, %zu clients\n", kP, kN,
              cfg.ops, cfg.clients);

  auto keys = workload::uniform_keys(kN, kBits, 101);
  std::vector<std::uint64_t> vals(keys.size());
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;
  workload::MixProfile mix;  // read-mostly tenants + 10% write tenant
  mix.zipf_theta = cfg.theta;
  auto reqs = workload::request_stream(keys, cfg.ops, mix, 202);

  struct Mode {
    const char* name;
    serve::Server::Options opt;
  };
  serve::Server::Options perreq;
  perreq.max_batch = 1;
  perreq.pipelined = false;
  // Lifecycle telemetry on for every latency mode: responses carry the
  // stage stamps for the breakdown table below, and PTRIE_TRACE /
  // PTRIE_METRICS (when set) get spans + window snapshots from the same
  // runs. Model metrics are unaffected. When neither sink is active the
  // skew detector is muted (alerts nobody can inspect would just spam
  // warn logs on every plain bench run).
  perreq.lifecycle = serve::Server::Options::Toggle::kOn;
  const bool observed = obs::Trace::instance().enabled() ||
                        !obs::env::str("PTRIE_METRICS",
                                       "per-tenant serving metrics JSON-lines sink "
                                       "(file path, or '-' for stderr)")
                             .empty();
  if (!observed) {
    obs::AlertConfig mute;
    mute.min_ops = ~0ull;
    perreq.alerts = mute;
  }
  serve::Server::Options coalesced;
  coalesced.max_batch = 512;
  coalesced.max_delay = std::chrono::microseconds(200);
  coalesced.pipelined = false;
  coalesced.lifecycle = serve::Server::Options::Toggle::kOn;
  coalesced.alerts = perreq.alerts;
  serve::Server::Options pipelined = coalesced;
  pipelined.pipelined = true;
  Mode modes[] = {{"per-request", perreq}, {"coalesced", coalesced},
                  {"pipelined", pipelined}};
  for (Mode& m : modes) {
    m.opt.overload_policy = cfg.policy;
    if (cfg.backlog > 0) m.opt.max_backlog = cfg.backlog;
  }

  bench::header("serving: throughput and latency vs offered load",
                {"mode", "offered", "ops/s", "p50_us", "p99_us", "mean_batch", "overlap",
                 "deadline%", "shed", "model_ms"});
  struct StageRow {
    std::string mode, offered;
    double queue = 0, coalesce = 0, prep = 0, exec = 0, service = 0;
    std::size_t n = 0;
  };
  std::vector<StageRow> stage_rows;
  auto mean = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double s = 0;
    for (double x : v) s += x;
    return s / double(v.size());
  };
  double perreq_sat = 0, pipelined_sat = 0, coalesced_sat = 0;
  std::uint64_t total_shed = 0;
  for (const Mode& m : modes) {
    for (double rate : cfg.rates) {
      // Each (mode, load) point gets a fresh trie so write churn from
      // earlier points cannot leak into later ones.
      pim::System sys(kP, 7);
      pimtrie::Config pcfg;
      pcfg.seed = 9;
      pimtrie::PimTrie trie(sys, pcfg);
      trie.build(keys, vals);

      auto model_before = sys.metrics().modelled_ns();
      RunResult r = run_mode(trie, reqs, cfg, m.opt, rate);
      bench::cell(std::string(m.name));
      bench::cell(rate_label(rate));
      bench::cell(r.ops_per_sec);
      bench::cell(r.p50_us);
      bench::cell(r.p99_us);
      bench::cell(r.stats.mean_batch());
      bench::cell(bench::fmt(r.stats.overlap_ratio(), 3));
      double closes = double(r.stats.close_size + r.stats.close_deadline +
                             r.stats.close_flush);
      bench::cell(closes > 0 ? 100.0 * double(r.stats.close_deadline) / closes : 0.0);
      bench::cell(std::size_t(r.stats.shed));
      bench::cell(double(sys.metrics().modelled_ns() - model_before) / 1e6);
      bench::endrow();
      total_shed += r.stats.shed;

      std::string tag = std::string(m.name) + "@" + rate_label(rate);
      bench::histogram("lat/" + tag, r.lat_us, "us");
      std::vector<double> bs(r.stats.batch_sizes.begin(), r.stats.batch_sizes.end());
      bench::histogram("batch/" + tag, bs, "reqs");
      StageRow sr;
      sr.mode = m.name;
      sr.offered = rate_label(rate);
      sr.queue = mean(r.queue_us);
      sr.coalesce = mean(r.coalesce_us);
      sr.prep = mean(r.prep_us);
      sr.exec = mean(r.exec_us);
      sr.service = sr.queue + sr.coalesce + sr.prep + sr.exec;
      sr.n = r.queue_us.size();
      stage_rows.push_back(std::move(sr));
      if (rate <= 0) {
        if (std::strcmp(m.name, "per-request") == 0) perreq_sat = r.ops_per_sec;
        if (std::strcmp(m.name, "coalesced") == 0) coalesced_sat = r.ops_per_sec;
        if (std::strcmp(m.name, "pipelined") == 0) pipelined_sat = r.ops_per_sec;
      }
    }
  }

  // Mean service-time decomposition from the lifecycle stamps. Stages
  // tile submit -> done, so queue+coalesce+prep+exec == service. Pure
  // wall-clock: informative, never gated.
  bench::header("serving: request-stage latency breakdown (mean us, wall-clock)",
                {"mode", "offered", "queue", "coalesce", "prep", "exec", "service"});
  for (const StageRow& sr : stage_rows) {
    bench::cell(sr.mode);
    bench::cell(sr.offered);
    bench::cell(sr.queue);
    bench::cell(sr.coalesce);
    bench::cell(sr.prep);
    bench::cell(sr.exec);
    bench::cell(sr.service);
    bench::endrow();
  }

  bench::header("serving: saturating-load speedup over per-request dispatch",
                {"mode", "ops/s", "speedup"});
  bench::cell(std::string("per-request"));
  bench::cell(perreq_sat);
  bench::cell(1.0);
  bench::endrow();
  bench::cell(std::string("coalesced"));
  bench::cell(coalesced_sat);
  bench::cell(perreq_sat > 0 ? coalesced_sat / perreq_sat : 0.0);
  bench::endrow();
  bench::cell(std::string("pipelined"));
  bench::cell(pipelined_sat);
  bench::cell(perreq_sat > 0 ? pipelined_sat / perreq_sat : 0.0);
  bench::endrow();
  std::printf("acceptance: pipelined >= 1.3x per-request at saturating load -> %s\n",
              pipelined_sat >= 1.3 * perreq_sat ? "PASS" : "FAIL");
  // Summed over the latency modes only (the deterministic shed table
  // below always sheds by construction); ci/check.sh greps this line.
  std::printf("overload: latency-mode sheds=%llu\n", (unsigned long long)total_shed);

  // Deterministic replay for the perf gate: one client, size-only batch
  // closing, so batch composition (and hence every model metric) is
  // exactly reproducible run to run.
  {
    bench::header("serving: fixed-batch replay (deterministic, perf-gate input)",
                  {"batch", "ops", "rounds", "words/op", "io/op", "pim_time",
                   "total_words", "model_ms"});
    struct PhaseRow {
      std::string label;  // "<batch>/<phase depth-2>"
      std::size_t rounds = 0;
      std::uint64_t total_words = 0, io_time = 0, pim_time = 0, modelled_ns = 0;
    };
    std::vector<PhaseRow> phase_rows;
    for (std::size_t batch : {64, 512}) {
      pim::System sys(kP, 7);
      pimtrie::Config pcfg;
      pcfg.seed = 9;
      pimtrie::PimTrie trie(sys, pcfg);
      trie.build(keys, vals);
      serve::Server::Options opt;
      opt.max_batch = batch;
      opt.max_delay = std::chrono::hours(2);  // never close on deadline
      opt.pipelined = true;
      auto c = bench::measure(sys, reqs.size(), [&] {
        serve::Server server(trie, opt);
        std::vector<std::future<serve::Response>> futs;
        futs.reserve(reqs.size());
        for (const auto& q : reqs)
          futs.push_back(server.submit(to_serve_op(q.op), q.key, q.value, q.tenant));
        server.drain();
        server.stop();
        for (auto& f : futs) f.get();
      });
      bench::cell(batch);
      bench::cell(reqs.size());
      bench::cell(c.rounds);
      bench::cell(c.words_per_op);
      bench::cell(c.io_time_per_op);
      bench::cell(std::size_t(c.pim_time));
      bench::cell(std::size_t(c.total_words));
      bench::cell(c.model_ms);
      bench::endrow();
      // Stage-attributed model cost: aggregate the replay's rounds by
      // phase path collapsed to depth 2 ("Serve/LCP", "Serve/Insert",
      // ...; build rounds carry other phases and drop out). Model
      // metrics only, so rows are exactly reproducible — the second
      // perf-gate table.
      for (const auto& ru : sys.metrics().phase_rollups()) {
        if (ru.phase.rfind("Serve", 0) != 0) continue;  // build etc.
        std::string p2 = ru.phase;
        std::size_t first = p2.find('/');
        if (first != std::string::npos) {
          std::size_t second = p2.find('/', first + 1);
          if (second != std::string::npos) p2.resize(second);
        }
        std::string label = std::to_string(batch) + "/" + p2;
        auto it = std::find_if(phase_rows.begin(), phase_rows.end(),
                               [&](const PhaseRow& r) { return r.label == label; });
        if (it == phase_rows.end()) {
          phase_rows.push_back({label, 0, 0, 0, 0, 0});
          it = phase_rows.end() - 1;
        }
        it->rounds += ru.rounds;
        it->total_words += ru.words;
        it->io_time += ru.io_time;
        it->pim_time += ru.pim_time;
        it->modelled_ns += ru.modelled_ns;
      }
    }
    bench::header("serving: per-stage model cost (deterministic, perf-gate input)",
                  {"batch/phase", "rounds", "total_words", "io_time", "pim_time",
                   "model_ms"});
    for (const PhaseRow& pr : phase_rows) {
      bench::cell(pr.label);
      bench::cell(pr.rounds);
      bench::cell(std::size_t(pr.total_words));
      bench::cell(std::size_t(pr.io_time));
      bench::cell(std::size_t(pr.pim_time));
      bench::cell(double(pr.modelled_ns) / 1e6);
      bench::endrow();
    }
  }

  // Deterministic shed decisions: the pipeline is paused while a single
  // thread submits, so admission reduces to backlog arithmetic under
  // kShed — exactly max_backlog requests are admitted (backlog 0 admits
  // none: capacity is zero before the clamp that only kBlock needs) and
  // the rest shed. Timer-free and thread-free, hence gate-safe.
  {
    bench::header("serving: shed decisions at full backlog (deterministic, perf-gate input)",
                  {"backlog", "submitted", "admitted", "shed"});
    pim::System sys(kP, 7);
    pimtrie::Config pcfg;
    pcfg.seed = 9;
    pimtrie::PimTrie trie(sys, pcfg);
    trie.build(keys, vals);  // reads only below, so one build serves all rows
    for (std::size_t backlog : {std::size_t(0), std::size_t(1), std::size_t(4)}) {
      serve::Server::Options opt;
      opt.max_batch = 1;  // one raw-queue slot per admitted request
      opt.pipelined = true;
      opt.overload_policy = serve::OverloadPolicy::kShed;
      opt.max_backlog = backlog;
      serve::Server server(trie, opt);
      server.debug_pause_pipeline();
      const std::size_t kSubmits = 24;
      std::vector<std::future<serve::Response>> futs;
      futs.reserve(kSubmits);
      for (std::size_t i = 0; i < kSubmits; ++i)
        futs.push_back(server.submit(serve::Op::kLcp, keys[i % keys.size()]));
      server.debug_resume_pipeline();
      server.drain();
      std::size_t shed = 0;
      for (auto& f : futs) shed += f.get().status == serve::Status::kShed ? 1 : 0;
      server.stop();
      bench::cell(backlog);
      bench::cell(kSubmits);
      bench::cell(kSubmits - shed);
      bench::cell(shed);
      bench::endrow();
    }
  }
  return pipelined_sat >= 1.3 * perreq_sat ? 0 : 1;
}
