// Ablation: the Push-Pull threshold (Section 3.3 / Algorithm 5). Push
// everything and a hot query region serializes on one module; pull
// everything and the host link becomes the bottleneck. Sweeping the
// threshold exposes the trade-off the paper's log^4 P default targets.

#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  // Note: a pure hot-spot batch (everyone probing one key) dedups into a
  // tiny query trie — the query-trie construction itself absorbs that
  // skew, a benefit the paper claims in Section 4.1. To expose the
  // push-pull trade-off we need *distinct* keys crowding the same region:
  // shared-prefix data with Zipf-weighted queries.
  std::printf("Ablation: push-pull threshold (P=16, n=4000, shared-prefix keys, "
              "zipf-1.1 batch=2000)\n");
  bench::header("LCP under query skew vs threshold",
                {"threshold", "rounds", "words/op", "iotime/op", "imbalance"});
  std::size_t n = 4000, batch = 2000, p = 16;
  auto keys = workload::shared_prefix_keys(n, 256, 64, 171);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  auto queries = workload::zipf_queries(keys, batch, 1.1, 172);

  for (std::size_t thr : {64, 256, 1024, 4096, 16384}) {
    pim::System sys(p, 173);
    pimtrie::Config cfg;
    cfg.seed = 174;
    cfg.push_pull = thr;
    pimtrie::PimTrie t(sys, cfg);
    t.build(keys, vals);
    auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
    bench::cell(thr);
    bench::cell(c.rounds);
    bench::cell(c.words_per_op);
    bench::cell(c.io_time_per_op);
    bench::cell(c.imbalance);
    bench::endrow();
  }
  std::printf("shape check: a giant threshold pushes the whole hot query region to the "
              "modules owning it (imbalance up); a tiny threshold pulls everything to "
              "the host (words/op up). The default log^4 P sits between.\n");
  return 0;
}
