// Ablation: the Section 4.2 design dilemma. Using only the trie
// (pointer chasing over randomly-placed nodes) costs O(l/s) rounds and
// hot-spots shared paths; using only hashes (x-fast-style per-level
// tables) costs O(L_D) space and supports only fixed-width keys. The
// hybrid (PIM-trie) gets the good column of each. We measure all three
// on the same 64-bit workload plus a long-key workload only the trie
// approaches can even index.

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/distributed_xfast.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Ablation: trie-only vs hash-only vs hybrid (Section 4.2 dilemma)\n");
  std::size_t n = 3000, batch = 1500, p = 16;

  bench::header("l = 64 bits (all three applicable)",
                {"mechanism", "rounds", "words/op", "space w/key", "imbalance"});
  {
    auto keys = workload::uniform_keys(n, 64, 151);
    std::vector<std::uint64_t> vals(keys.size(), 1);
    auto queries = workload::hot_spot_queries(keys, batch, 152);
    {
      pim::System sys(p, 153);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(keys, vals);
      auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
      bench::cell(std::string("trie-only"));
      bench::cell(c.rounds);
      bench::cell(c.words_per_op);
      bench::cell(double(t.space_words()) / n);
      bench::cell(c.imbalance);
      bench::endrow();
    }
    {
      pim::System sys(p, 154);
      baselines::DistributedXFastTrie t(sys, 64);
      auto ik = workload::uniform_u64(n, 155);
      std::vector<std::uint64_t> iv(ik.size(), 1);
      t.build(ik, iv);
      std::vector<std::uint64_t> iq;
      core::Rng rng(156);
      for (std::size_t i = 0; i < batch; ++i) iq.push_back(ik[rng.below(ik.size() / 50)]);
      auto c = bench::measure(sys, batch, [&] { t.batch_lcp(iq); });
      bench::cell(std::string("hash-only"));
      bench::cell(c.rounds);
      bench::cell(c.words_per_op);
      bench::cell(double(t.space_words()) / n);
      bench::cell(c.imbalance);
      bench::endrow();
    }
    {
      pim::System sys(p, 157);
      pimtrie::Config cfg;
      cfg.seed = 158;
      pimtrie::PimTrie t(sys, cfg);
      t.build(keys, vals);
      auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
      bench::cell(std::string("hybrid"));
      bench::cell(c.rounds);
      bench::cell(c.words_per_op);
      bench::cell(double(t.space_words()) / n);
      bench::cell(c.imbalance);
      bench::endrow();
    }
  }

  bench::header("l = 1024 bits, adversarial shared prefix (hash-only N/A: fixed-width)",
                {"mechanism", "rounds", "words/op", "space w/key", "imbalance"});
  {
    auto keys = workload::shared_prefix_keys(n / 2, 900, 124, 161);
    std::vector<std::uint64_t> vals(keys.size(), 1);
    auto queries = workload::zipf_queries(keys, batch, 0.99, 162);
    {
      pim::System sys(p, 163);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(keys, vals);
      auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
      bench::cell(std::string("trie-only"));
      bench::cell(c.rounds);
      bench::cell(c.words_per_op);
      bench::cell(double(t.space_words()) / keys.size());
      bench::cell(c.imbalance);
      bench::endrow();
    }
    {
      pim::System sys(p, 164);
      pimtrie::Config cfg;
      cfg.seed = 165;
      pimtrie::PimTrie t(sys, cfg);
      t.build(keys, vals);
      auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
      bench::cell(std::string("hybrid"));
      bench::cell(c.rounds);
      bench::cell(c.words_per_op);
      bench::cell(double(t.space_words()) / keys.size());
      bench::cell(c.imbalance);
      bench::endrow();
    }
  }
  std::printf("shape check: trie-only pays l/s rounds and hot-spots the shared prefix "
              "path; hash-only pays ~l words/key of space and cannot index long keys at "
              "all; the hybrid is simultaneously low-round, low-space and balanced — "
              "the paper's central design claim.\n");
  return 0;
}
