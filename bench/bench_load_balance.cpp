// Skew resistance (paper Definition 1 + Section 3.2's imbalance
// argument): per-module communication imbalance (max/mean) under
// progressively nastier query and data skew, for the range-partitioned
// index (expected to serialize), the node-hashed radix tree, and
// PIM-trie (expected to stay balanced whp — Theorem 4.3).

#include "baselines/distributed_radix_tree.hpp"
#include "baselines/range_partitioned.hpp"
#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("Skew-resistance reproduction (P=16, n=3000, batch=2000, l=64)\n");

  std::size_t n = 3000, batch = 2000, l = 64, p = 16;

  struct Workload {
    const char* name;
    std::vector<core::BitString> data;
    std::vector<core::BitString> queries;
  };
  std::vector<Workload> loads;
  {
    auto data = workload::uniform_keys(n, l, 91);
    loads.push_back({"uniform/uniform", data, workload::zipf_queries(data, batch, 0.0, 92)});
    loads.push_back({"uniform/zipf.99", data, workload::zipf_queries(data, batch, 0.99, 93)});
    loads.push_back({"uniform/zipf1.3", data, workload::zipf_queries(data, batch, 1.3, 94)});
    loads.push_back({"uniform/hotspot", data, workload::hot_spot_queries(data, batch, 95)});
  }
  {
    // Adversarial data skew: all keys under one long shared prefix.
    auto data = workload::shared_prefix_keys(n, 200, 48, 96);
    loads.push_back({"sharedpfx/zipf", data, workload::zipf_queries(data, batch, 0.99, 97)});
    loads.push_back({"sharedpfx/hot", data, workload::hot_spot_queries(data, batch, 98)});
  }

  bench::header("comm imbalance (max/mean per-module words; 1.0 = perfect)",
                {"workload", "range-part", "radix", "pim-trie", "pt rounds"});
  for (auto& wl : loads) {
    std::vector<std::uint64_t> vals(wl.data.size(), 1);
    double range_imb = 0, radix_imb = 0, pt_imb = 0;
    std::size_t pt_rounds = 0;
    {
      pim::System sys(p, 101);
      baselines::RangePartitionedIndex t(sys);
      t.build(wl.data, vals);
      sys.metrics().reset();
      t.batch_lcp(wl.queries);
      range_imb = sys.metrics().comm_imbalance();
    }
    {
      pim::System sys(p, 102);
      baselines::DistributedRadixTree t(sys, 4);
      t.build(wl.data, vals);
      sys.metrics().reset();
      t.batch_lcp(wl.queries);
      radix_imb = sys.metrics().comm_imbalance();
    }
    {
      pim::System sys(p, 103);
      pimtrie::Config cfg;
      cfg.seed = 104;
      pimtrie::PimTrie t(sys, cfg);
      t.build(wl.data, vals);
      sys.metrics().reset();
      t.batch_lcp(wl.queries);
      pt_imb = sys.metrics().comm_imbalance();
      pt_rounds = sys.metrics().io_rounds();
    }
    bench::cell(std::string(wl.name));
    bench::cell(range_imb);
    bench::cell(radix_imb);
    bench::cell(pt_imb);
    bench::cell(pt_rounds);
    bench::endrow();
  }
  std::printf("shape check: range partitioning degrades toward P (=16) under hot-spot "
              "skew (the whole batch lands on one module); the node-hashed radix tree "
              "hot-spots the nodes on the shared search path; pim-trie stays near 1-2x "
              "on every workload (Theorem 4.3's PIM-balance).\n");

  // Static space balance under adversarial data.
  bench::header("resident-space imbalance (max/mean per-module words)",
                {"data", "pim-trie"});
  for (const char* which : {"uniform", "sharedpfx", "caterpillar"}) {
    std::vector<core::BitString> data;
    if (std::string(which) == "uniform") data = workload::uniform_keys(n, l, 111);
    else if (std::string(which) == "sharedpfx") data = workload::shared_prefix_keys(n, 200, 48, 112);
    else data = workload::caterpillar_keys(800, 8, 113);
    std::vector<std::uint64_t> vals(data.size(), 1);
    pim::System sys(p, 114);
    pimtrie::Config cfg;
    cfg.seed = 115;
    pimtrie::PimTrie t(sys, cfg);
    t.build(data, vals);
    bench::cell(std::string(which));
    bench::cell(t.space_imbalance());
    bench::endrow();
  }
  std::printf("shape check: random block placement keeps per-module space near-uniform "
              "even for the path-shaped (caterpillar) trie.\n");
  return 0;
}
