// Theorem 4.3 / 5.1 scaling: IO rounds grow ~log P while per-operation
// communication stays flat; IO time per op shrinks ~1/P (aggregate
// bandwidth scaling — the whole point of PIM).

#include <cmath>

#include "common.hpp"
#include "pimtrie/pim_trie.hpp"
#include "workload/generators.hpp"

using namespace ptrie;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  std::printf("PIM-trie scaling in P (n=4000, l=128, batch=2000)\n");
  bench::header("LCP cost vs P",
                {"P", "rounds", "rounds/log2P", "words/op", "iotime/op", "imbalance"});
  std::size_t n = 4000, batch = 2000, l = 128;
  auto keys = workload::uniform_keys(n, l, 121);
  std::vector<std::uint64_t> vals(keys.size(), 1);
  auto queries = workload::zipf_queries(keys, batch, 0.5, 122);

  for (std::size_t p : {2, 4, 8, 16, 32, 64, 128}) {
    pim::System sys(p, 123);
    pimtrie::Config cfg;
    cfg.seed = 124;
    pimtrie::PimTrie t(sys, cfg);
    t.build(keys, vals);
    auto c = bench::measure(sys, batch, [&] { t.batch_lcp(queries); });
    bench::cell(p);
    bench::cell(c.rounds);
    bench::cell(double(c.rounds) / std::log2(double(p)));
    bench::cell(c.words_per_op);
    bench::cell(c.io_time_per_op);
    bench::cell(c.imbalance);
    bench::endrow();
  }
  std::printf("shape check: rounds/log2(P) stays near-constant (the O(log P) bound); "
              "words/op is flat in P; iotime/op falls roughly as 1/P while balance "
              "holds — aggregate PIM bandwidth is actually being used.\n");

  bench::header("Insert cost vs P (batch=1000 fresh keys)",
                {"P", "rounds", "words/op", "iotime/op"});
  for (std::size_t p : {4, 16, 64}) {
    pim::System sys(p, 125);
    pimtrie::Config cfg;
    cfg.seed = 126;
    pimtrie::PimTrie t(sys, cfg);
    t.build(keys, vals);
    auto extra = workload::uniform_keys(1000, l, 127);
    std::vector<std::uint64_t> evals(extra.size(), 2);
    auto c = bench::measure(sys, extra.size(), [&] { t.batch_insert(extra, evals); });
    bench::cell(p);
    bench::cell(c.rounds);
    bench::cell(c.words_per_op);
    bench::cell(c.io_time_per_op);
    bench::endrow();
  }
  return 0;
}
