// ptrie_report: offline summarizer for the simulator's machine-readable
// outputs. Accepts either
//   - a Chrome trace written via PTRIE_TRACE=<path> (obs/trace.cpp), or
//   - a bench result file written via --json (bench/common.hpp),
// detected by shape. For traces it prints per-phase breakdowns (rounds,
// words, IO/PIM time, imbalance), a per-module balance heatmap, and a
// round-by-round listing; for bench files it re-prints the tables and
// counters. Traces from serving runs additionally carry request
// lifecycle spans on a "serving" track — summarized separately, never
// mixed into the model-metric breakdowns.
//
//   ptrie_report <file> [--rounds N]   (N = round listing cap, default 30;
//                                       0 = suppress, -1 = unlimited)
//
// --top renders the PTRIE_METRICS JSON-lines sink (obs/metrics_window):
// the latest window's per-tenant / per-stage table plus recent skew
// alerts. One shot by default (CI-friendly); --follow tails the file and
// re-renders as new windows land.
//
//   ptrie_report --top <metrics.jsonl> [--follow]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/env.hpp"
#include "obs/json.hpp"

namespace json = ptrie::obs::json;

namespace {

struct RoundRow {
  std::uint32_t system = 0;
  std::size_t round = 0;
  std::string label, phase;
  std::uint64_t ts = 0, io = 0, pim = 0, words = 0, work = 0, touched = 0;
  std::uint64_t model_ns = 0;  // wallclock-backend traces only
};

struct ModuleSample {
  std::uint32_t system = 0;
  std::size_t round = 0;
  std::uint32_t module = 0;
  std::uint64_t words = 0, work = 0;
};

struct PhaseAgg {
  std::size_t rounds = 0;
  std::uint64_t words = 0, io = 0, work = 0, pim = 0, touched = 0, model_ns = 0;
  std::vector<std::uint64_t> module_words;  // dense, sized to max module + 1
};

std::uint64_t get_u64(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v ? static_cast<std::uint64_t>(v->as_int()) : 0;
}

double imbalance_of(const std::vector<std::uint64_t>& per_module, std::size_t p) {
  if (p == 0) return 1.0;
  std::uint64_t max = 0, sum = 0;
  for (std::size_t m = 0; m < p; ++m) {
    std::uint64_t v = m < per_module.size() ? per_module[m] : 0;
    sum += v;
    if (v > max) max = v;
  }
  double mean = double(sum) / double(p);
  return mean > 0 ? double(max) / mean : 1.0;
}

char heat_char(std::uint64_t v, std::uint64_t max) {
  static const char kRamp[] = " .:-=+*#%@";
  if (max == 0) return kRamp[0];
  std::size_t idx = static_cast<std::size_t>((v * 9 + max - 1) / max);  // ceil to [0,9]
  return kRamp[std::min<std::size_t>(idx, 9)];
}

int report_trace(const json::Value& root, long rounds_cap) {
  const json::Value* events = root.find("traceEvents");
  if (!events || events->kind != json::Value::Kind::kArray) {
    std::fprintf(stderr, "no traceEvents array\n");
    return 1;
  }

  // Two passes: metadata first, so the "serving" process track (request
  // lifecycle spans, wall-clock) is known before events are classified —
  // its slices must not be misread as model-time rounds.
  std::map<std::uint32_t, std::string> system_name;
  for (const auto& ev : events->arr) {
    const json::Value* ph = ev.find("ph");
    if (!ph || ph->as_string() != "M") continue;
    const json::Value* name = ev.find("name");
    const json::Value* args = ev.find("args");
    if (name && args && name->as_string() == "process_name")
      if (const json::Value* n = args->find("name"))
        system_name[static_cast<std::uint32_t>(get_u64(ev, "pid"))] = n->as_string();
  }
  auto is_serving = [&](std::uint32_t pid) {
    auto it = system_name.find(pid);
    return it != system_name.end() && it->second == "serving";
  };

  std::vector<RoundRow> rounds;
  std::vector<ModuleSample> samples;
  std::map<std::uint32_t, std::size_t> system_p;  // modules seen per system
  // Serving-span tallies (by category) + alert instants.
  std::map<std::string, std::pair<std::size_t, double>> span_agg;  // cat -> {n, dur_us}
  std::vector<std::string> span_order;
  std::vector<std::string> alert_names;
  for (const auto& ev : events->arr) {
    const json::Value* ph = ev.find("ph");
    if (!ph) continue;
    std::uint32_t pid = static_cast<std::uint32_t>(get_u64(ev, "pid"));
    std::uint32_t tid = static_cast<std::uint32_t>(get_u64(ev, "tid"));
    if (ph->as_string() == "M") {
      const json::Value* name = ev.find("name");
      if (name && name->as_string() == "thread_name" && tid >= 1 && !is_serving(pid))
        system_p[pid] = std::max(system_p[pid], static_cast<std::size_t>(tid));
      continue;
    }
    if (is_serving(pid)) {
      std::string cat = ev.find("cat") ? ev.find("cat")->as_string() : "?";
      if (ph->as_string() == "i" && cat == "alert") {
        if (const json::Value* n = ev.find("name")) alert_names.push_back(n->as_string());
        continue;
      }
      if (ph->as_string() != "X") continue;
      double dur = ev.find("dur") ? ev.find("dur")->as_double() : 0;
      if (!span_agg.count(cat)) span_order.push_back(cat);
      auto& [n, d] = span_agg[cat];
      ++n;
      d += dur;
      continue;
    }
    if (ph->as_string() != "X") continue;
    const json::Value* args = ev.find("args");
    if (!args) continue;
    if (tid == 0) {
      RoundRow r;
      r.system = pid;
      r.round = static_cast<std::size_t>(get_u64(*args, "round"));
      if (const json::Value* n = ev.find("name")) r.label = n->as_string();
      if (const json::Value* c = ev.find("cat")) r.phase = c->as_string();
      r.ts = get_u64(ev, "ts");
      r.words = get_u64(*args, "total_words");
      r.io = get_u64(*args, "io_time");
      r.work = get_u64(*args, "total_work");
      r.pim = get_u64(*args, "pim_time");
      r.touched = get_u64(*args, "touched_modules");
      r.model_ns = get_u64(*args, "modelled_ns");
      rounds.push_back(std::move(r));
    } else {
      ModuleSample s;
      s.system = pid;
      s.round = static_cast<std::size_t>(get_u64(*args, "round"));
      s.module = tid - 1;
      s.words = get_u64(*args, "words");
      s.work = get_u64(*args, "work");
      samples.push_back(s);
      system_p[pid] = std::max(system_p[pid], static_cast<std::size_t>(tid));
    }
  }
  // Serving-track summary (request lifecycle spans; wall-clock us).
  auto print_serving = [&] {
    if (span_agg.empty() && alert_names.empty()) return;
    std::printf("=== serving (request lifecycle spans) ===\n");
    std::printf("%-12s %8s %14s %14s\n", "category", "spans", "total_us", "mean_us");
    for (const auto& cat : span_order) {
      const auto& [n, d] = span_agg[cat];
      std::printf("%-12s %8zu %14.1f %14.1f\n", cat.c_str(), n, d, n ? d / double(n) : 0.0);
    }
    if (!alert_names.empty()) {
      std::map<std::string, std::size_t> by_kind;
      for (const auto& a : alert_names) ++by_kind[a];
      std::printf("alerts:");
      for (const auto& [kind, n] : by_kind) std::printf(" %s x%zu", kind.c_str(), n);
      std::printf("\n");
    }
    std::printf("\n");
  };

  if (rounds.empty()) {
    if (!span_agg.empty() || !alert_names.empty()) {
      print_serving();
      return 0;
    }
    std::fprintf(stderr, "trace has no rounds\n");
    return 1;
  }
  print_serving();

  // Phase of each (system, round) for joining module samples.
  std::map<std::pair<std::uint32_t, std::size_t>, const RoundRow*> round_of;
  for (const auto& r : rounds) round_of[{r.system, r.round}] = &r;

  // Group by system; phases in first-seen order.
  std::vector<std::uint32_t> systems;
  for (const auto& r : rounds)
    if (std::find(systems.begin(), systems.end(), r.system) == systems.end())
      systems.push_back(r.system);

  for (std::uint32_t sys : systems) {
    std::size_t p = system_p.count(sys) ? system_p[sys] : 0;
    std::string name = system_name.count(sys)
                           ? system_name[sys]
                           : ("pim-system-" + std::to_string(sys));
    std::printf("=== %s ===\n", name.c_str());

    std::vector<std::string> order;
    std::map<std::string, PhaseAgg> agg;
    std::uint64_t tot_words = 0, tot_io = 0, tot_work = 0, tot_pim = 0, tot_ns = 0;
    std::size_t tot_rounds = 0, tot_touched = 0;
    for (const auto& r : rounds) {
      if (r.system != sys) continue;
      std::string key = r.phase.empty() || r.phase == "unphased" ? "(unphased)" : r.phase;
      if (!agg.count(key)) order.push_back(key);
      PhaseAgg& a = agg[key];
      ++a.rounds;
      a.words += r.words;
      a.io += r.io;
      a.work += r.work;
      a.pim += r.pim;
      a.touched += r.touched;
      a.model_ns += r.model_ns;
      ++tot_rounds;
      tot_words += r.words;
      tot_io += r.io;
      tot_work += r.work;
      tot_pim += r.pim;
      tot_touched += r.touched;
      tot_ns += r.model_ns;
    }
    bool have_modules = false;
    for (const auto& s : samples) {
      if (s.system != sys) continue;
      auto it = round_of.find({s.system, s.round});
      if (it == round_of.end()) continue;
      const std::string& ph = it->second->phase;
      std::string key = ph.empty() || ph == "unphased" ? "(unphased)" : ph;
      PhaseAgg& a = agg[key];
      if (a.module_words.size() <= s.module) a.module_words.resize(s.module + 1, 0);
      a.module_words[s.module] += s.words;
      have_modules = true;
    }

    // model_ms appears only when the trace carries wallclock-backend
    // charges, so exact-backend reports render exactly as before.
    const bool have_ms = tot_ns != 0;
    std::printf("\n-- per-phase breakdown --\n");
    std::printf("%-36s %8s %12s %12s %12s %10s %10s", "phase", "rounds", "words",
                "io_time", "pim_time", "touched", "imbal");
    if (have_ms) std::printf(" %12s", "model_ms");
    std::printf("\n");
    for (const auto& key : order) {
      const PhaseAgg& a = agg[key];
      char imbal[16] = "-";
      if (have_modules && p > 0)
        std::snprintf(imbal, sizeof imbal, "%.2f", imbalance_of(a.module_words, p));
      std::printf("%-36s %8zu %12llu %12llu %12llu %10llu %10s", key.c_str(), a.rounds,
                  (unsigned long long)a.words, (unsigned long long)a.io,
                  (unsigned long long)a.pim, (unsigned long long)a.touched, imbal);
      if (have_ms) std::printf(" %12.3f", double(a.model_ns) / 1e6);
      std::printf("\n");
    }
    std::printf("%-36s %8zu %12llu %12llu %12llu %10zu", "TOTAL", tot_rounds,
                (unsigned long long)tot_words, (unsigned long long)tot_io,
                (unsigned long long)tot_pim, tot_touched);
    if (have_ms) std::printf(" %10s %12.3f", "", double(tot_ns) / 1e6);
    std::printf("\n");

    if (have_modules && p > 0) {
      std::printf("\n-- per-module balance heatmap (words; scale ' .:-=+*#%%@') --\n");
      std::printf("%-36s  modules 0..%zu\n", "phase", p - 1);
      for (const auto& key : order) {
        const PhaseAgg& a = agg[key];
        std::uint64_t max = 0;
        for (std::uint64_t v : a.module_words) max = std::max(max, v);
        std::string row;
        for (std::size_t m = 0; m < p; ++m)
          row += heat_char(m < a.module_words.size() ? a.module_words[m] : 0, max);
        std::printf("%-36s  [%s]\n", key.c_str(), row.c_str());
      }
    }

    if (rounds_cap != 0) {
      std::printf("\n-- rounds --\n");
      std::printf("%6s %-26s %-36s %10s %10s %10s %8s\n", "round", "label", "phase",
                  "words", "io_time", "pim_time", "touched");
      long shown = 0;
      std::size_t in_sys = 0;
      for (const auto& r : rounds)
        if (r.system == sys) ++in_sys;
      for (const auto& r : rounds) {
        if (r.system != sys) continue;
        if (rounds_cap > 0 && shown >= rounds_cap) {
          std::printf("  ... %zu more rounds (--rounds -1 for all)\n",
                      in_sys - static_cast<std::size_t>(shown));
          break;
        }
        std::printf("%6zu %-26s %-36s %10llu %10llu %10llu %8llu\n", r.round,
                    r.label.c_str(), (r.phase.empty() ? "(unphased)" : r.phase).c_str(),
                    (unsigned long long)r.words, (unsigned long long)r.io,
                    (unsigned long long)r.pim, (unsigned long long)r.touched);
        ++shown;
      }
    }
    std::printf("\n");
  }
  return 0;
}

int report_bench(const json::Value& root) {
  const json::Value* binary = root.find("binary");
  std::printf("=== bench result: %s ===\n",
              binary ? binary->as_string().c_str() : "(unknown)");
  const json::Value* tables = root.find("tables");
  if (!tables || tables->kind != json::Value::Kind::kArray) {
    std::fprintf(stderr, "no tables array\n");
    return 1;
  }
  for (const auto& t : tables->arr) {
    const json::Value* title = t.find("title");
    const json::Value* cols = t.find("columns");
    const json::Value* rows = t.find("rows");
    std::printf("\n== %s ==\n", title ? title->as_string().c_str() : "");
    if (cols)
      for (const auto& c : cols->arr) std::printf("%-16s", c.as_string().c_str());
    std::printf("\n");
    std::size_t n_rows = 0;
    if (rows) {
      for (const auto& row : rows->arr) {
        for (const auto& cell : row.arr) {
          if (cell.kind == json::Value::Kind::kString)
            std::printf("%-16s", cell.as_string().c_str());
          else if (cell.is_int)
            std::printf("%-16lld", (long long)cell.as_int());
          else
            std::printf("%-16.2f", cell.as_double());
        }
        std::printf("\n");
        ++n_rows;
      }
    }
    std::printf("(%zu rows)\n", n_rows);
  }
  // Full latency/batch-size distributions (bench::histogram): render the
  // bucket shape, then join histograms named "<kind>/<mode>@<load>" into
  // per-mode latency-vs-load curves.
  if (const json::Value* hists = root.find("histograms");
      hists && hists->kind == json::Value::Kind::kArray && !hists->arr.empty()) {
    std::printf("\n== histograms ==\n");
    for (const auto& h : hists->arr) {
      const json::Value* name = h.find("name");
      const json::Value* unit = h.find("unit");
      const json::Value* buckets = h.find("buckets");
      double p50 = h.find("p50") ? h.find("p50")->as_double() : 0;
      double p99 = h.find("p99") ? h.find("p99")->as_double() : 0;
      std::printf("%-32s n=%-7llu p50=%.1f%s p99=%.1f%s\n",
                  name ? name->as_string().c_str() : "?",
                  (unsigned long long)get_u64(h, "count"),
                  p50, unit ? unit->as_string().c_str() : "",
                  p99, unit ? unit->as_string().c_str() : "");
      if (!buckets || buckets->kind != json::Value::Kind::kArray) continue;
      std::uint64_t max = 0;
      for (const auto& b : buckets->arr) max = std::max(max, get_u64(b, "count"));
      bool seen = false;
      for (const auto& b : buckets->arr) {
        std::uint64_t c = get_u64(b, "count");
        if (c == 0 && !seen) continue;  // skip the empty low tail
        seen = true;
        double le = b.find("le") ? b.find("le")->as_double() : 0;
        std::size_t bar = max ? static_cast<std::size_t>(c * 40 / max) : 0;
        std::printf("  <=%-12.6g %8llu |%s\n", le, (unsigned long long)c,
                    std::string(bar, '#').c_str());
      }
    }
    // latency-vs-load curves: lat/<mode>@<load> -> one line per point.
    struct Point {
      std::string mode, load;
      double p50, p90, p99;
    };
    std::vector<Point> pts;
    for (const auto& h : hists->arr) {
      const json::Value* name = h.find("name");
      if (!name) continue;
      std::string n = name->as_string();
      if (n.rfind("lat/", 0) != 0) continue;
      auto at = n.find('@');
      if (at == std::string::npos) continue;
      pts.push_back({n.substr(4, at - 4), n.substr(at + 1),
                     h.find("p50") ? h.find("p50")->as_double() : 0,
                     h.find("p90") ? h.find("p90")->as_double() : 0,
                     h.find("p99") ? h.find("p99")->as_double() : 0});
    }
    if (!pts.empty()) {
      std::printf("\n== latency vs offered load ==\n");
      std::printf("%-16s %-10s %12s %12s %12s\n", "mode", "load", "p50", "p90", "p99");
      for (const auto& pt : pts)
        std::printf("%-16s %-10s %12.1f %12.1f %12.1f\n", pt.mode.c_str(),
                    pt.load.c_str(), pt.p50, pt.p90, pt.p99);
    }
  }
  if (const json::Value* counters = root.find("counters");
      counters && !counters->obj.empty()) {
    std::printf("\n== counters ==\n");
    for (const auto& [name, v] : counters->obj)
      std::printf("%-36s %llu\n", name.c_str(), (unsigned long long)v.as_int());
  }
  return 0;
}

// ---- ptrie_top: PTRIE_METRICS JSON-lines viewer -----------------------
// Renders the latest window from a metrics sink: a global summary line,
// the per-tenant / per-stage table, and recent skew alerts. The sink is
// append-only JSONL (obs/metrics_window.cpp), so rendering is a single
// forward parse keeping the last complete window.

struct TopState {
  json::Value window;                    // latest "window" line
  std::vector<json::Value> tenants;      // "tenant" lines of that window
  std::vector<json::Value> alerts;       // all "alert" lines, file order
  std::size_t parsed = 0, bad = 0;
};

TopState parse_metrics_lines(const std::string& content) {
  TopState st;
  std::uint64_t latest = 0;
  bool have_window = false;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value v;
    std::string err;
    if (!json::parse(line, v, err)) {
      ++st.bad;
      continue;
    }
    ++st.parsed;
    const json::Value* type = v.find("type");
    if (!type) continue;
    std::uint64_t w = get_u64(v, "window");
    if (type->as_string() == "window") {
      if (!have_window || w >= latest) {
        latest = w;
        have_window = true;
        st.window = std::move(v);
        st.tenants.clear();  // tenant lines of older windows are stale
      }
    } else if (type->as_string() == "tenant") {
      if (have_window && w == latest) st.tenants.push_back(std::move(v));
    } else if (type->as_string() == "alert") {
      st.alerts.push_back(std::move(v));
    }
  }
  return st;
}

void render_top(const TopState& st) {
  if (st.parsed == 0) {
    std::printf("(no metrics lines yet)\n");
    return;
  }
  const json::Value& w = st.window;
  std::printf("window %llu  t=%.1fms  span=%.1fms  ops=%llu  in_flight=%llu  "
              "queue_depth=%llu  module_imbalance=%.2f  shed=%llu  expired=%llu  "
              "failed=%llu\n",
              (unsigned long long)get_u64(w, "window"),
              w.find("t_ms") ? w.find("t_ms")->as_double() : 0,
              w.find("span_ms") ? w.find("span_ms")->as_double() : 0,
              (unsigned long long)get_u64(w, "ops"),
              (unsigned long long)get_u64(w, "in_flight"),
              (unsigned long long)get_u64(w, "queue_depth"),
              w.find("module_imbalance") ? w.find("module_imbalance")->as_double() : 0,
              (unsigned long long)get_u64(w, "shed"),
              (unsigned long long)get_u64(w, "expired"),
              (unsigned long long)get_u64(w, "failed"));
  std::printf("%-7s %8s %10s %6s %6s %6s %9s %9s %9s %9s %8s %7s %7s\n", "tenant",
              "ops", "ops/s", "shed", "exp", "fail", "p50_us", "p95_us", "p99_us",
              "exec_p95", "w/op", "batch", "hot%");
  for (const auto& t : st.tenants) {
    const json::Value* lat = t.find("lat_us");
    const json::Value* total = lat ? lat->find("total") : nullptr;
    const json::Value* exec = lat ? lat->find("exec") : nullptr;
    auto f = [](const json::Value* o, const char* k) {
      const json::Value* v = o ? o->find(k) : nullptr;
      return v ? v->as_double() : 0.0;
    };
    std::printf("%-7llu %8llu %10.0f %6llu %6llu %6llu %9.1f %9.1f %9.1f %9.1f %8.1f "
                "%7.1f %7.1f\n",
                (unsigned long long)get_u64(t, "tenant"),
                (unsigned long long)get_u64(t, "ops"),
                t.find("ops_per_sec") ? t.find("ops_per_sec")->as_double() : 0,
                (unsigned long long)get_u64(t, "shed"),
                (unsigned long long)get_u64(t, "expired"),
                (unsigned long long)get_u64(t, "failed"),
                f(total, "p50"), f(total, "p95"), f(total, "p99"), f(exec, "p95"),
                t.find("words_per_op") ? t.find("words_per_op")->as_double() : 0,
                t.find("mean_batch") ? t.find("mean_batch")->as_double() : 0,
                100.0 * (t.find("hot_frac") ? t.find("hot_frac")->as_double() : 0));
  }
  if (!st.alerts.empty()) {
    std::printf("-- alerts (%zu total, last %zu shown) --\n", st.alerts.size(),
                std::min<std::size_t>(st.alerts.size(), 8));
    std::size_t from = st.alerts.size() > 8 ? st.alerts.size() - 8 : 0;
    for (std::size_t i = from; i < st.alerts.size(); ++i) {
      const json::Value& a = st.alerts[i];
      const json::Value* kind = a.find("kind");
      std::printf("  window %-5llu %-18s value=%.3f threshold=%.3f",
                  (unsigned long long)get_u64(a, "window"),
                  kind ? kind->as_string().c_str() : "?",
                  a.find("value") ? a.find("value")->as_double() : 0,
                  a.find("threshold") ? a.find("threshold")->as_double() : 0);
      if (a.find("tenant"))
        std::printf(" tenant=%llu", (unsigned long long)get_u64(a, "tenant"));
      std::printf("\n");
    }
  }
  if (st.bad) std::printf("(%zu unparseable lines skipped)\n", st.bad);
}

int top_mode(const char* path, bool follow) {
  auto slurp = [&](std::string* out) {
    std::ifstream f(path);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    *out = ss.str();
    return true;
  };
  std::string content;
  if (!slurp(&content)) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  render_top(parse_metrics_lines(content));
  while (follow) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    std::string fresh;
    if (!slurp(&fresh) || fresh.size() == content.size()) continue;
    content = std::move(fresh);
    std::printf("\033[H\033[2J");  // home + clear: live refresh
    render_top(parse_metrics_lines(content));
    std::fflush(stdout);
  }
  return 0;
}

// ---- perf gate --------------------------------------------------------
// Compares two bench --json files on the machine-independent model
// columns only (rounds, words, IO/PIM time); wall-clock, throughput and
// latency columns vary with host load and are never gated. Exit 1 when
// a gated value regressed (grew) by more than `tol` relative.

bool gated_column(const std::string& name) {
  // "shed" is a deterministic admission count (bench_serving's shed table
  // runs with the pipeline paused), so it gates like the model columns.
  static const char* kCols[] = {"rounds",      "words/op", "io/op",  "io_time",
                                "pim_time",    "total_words", "words", "touched",
                                "shed"};
  for (const char* c : kCols)
    if (name == c) return true;
  return false;
}

int gate(const json::Value& base, const json::Value& fresh, double tol) {
  const json::Value* bt = base.find("tables");
  const json::Value* ft = fresh.find("tables");
  if (!bt || !ft) {
    std::fprintf(stderr, "gate: missing tables array\n");
    return 2;
  }
  auto find_table = [](const json::Value& tables, const std::string& title)
      -> const json::Value* {
    for (const auto& t : tables.arr)
      if (const json::Value* ti = t.find("title"); ti && ti->as_string() == title)
        return &t;
    return nullptr;
  };
  std::size_t checked = 0, failures = 0;
  for (const auto& b : bt->arr) {
    const json::Value* title = b.find("title");
    if (!title) continue;
    const json::Value* f = find_table(*ft, title->as_string());
    if (!f) {
      std::fprintf(stderr, "gate: FAIL table missing in fresh run: %s\n",
                   title->as_string().c_str());
      ++failures;
      continue;
    }
    const std::string title_str = title->as_string();
    const char* tname = title_str.c_str();
    const json::Value* cols = b.find("columns");
    const json::Value* brows = b.find("rows");
    const json::Value* fcols = f->find("columns");
    const json::Value* frows = f->find("rows");
    // A malformed side is a loud failure, never a silent skip: a gate
    // that "passes" because a key vanished has stopped gating anything.
    bool shaped = true;
    for (auto [v, side, key] : {std::tuple{cols, "baseline", "columns"},
                                std::tuple{brows, "baseline", "rows"},
                                std::tuple{fcols, "candidate", "columns"},
                                std::tuple{frows, "candidate", "rows"}}) {
      if (v) continue;
      std::fprintf(stderr, "gate: FAIL %s table '%s' has no '%s' key\n", side, tname, key);
      ++failures;
      shaped = false;
    }
    if (!shaped) continue;
    if (brows->arr.size() != frows->arr.size()) {
      std::fprintf(stderr, "gate: FAIL row count %zu -> %zu in: %s\n", brows->arr.size(),
                   frows->arr.size(), tname);
      ++failures;
      continue;
    }
    // Resolve each gated baseline column by NAME in the candidate's
    // column list: the candidate may append new (ungated) columns, but a
    // gated baseline column it no longer reports fails by name.
    std::vector<long> fresh_idx(cols->arr.size(), -1);
    for (std::size_t c = 0; c < cols->arr.size(); ++c) {
      const std::string col = cols->arr[c].as_string();
      if (!gated_column(col)) continue;
      for (std::size_t fc = 0; fc < fcols->arr.size(); ++fc)
        if (fcols->arr[fc].as_string() == col) {
          fresh_idx[c] = static_cast<long>(fc);
          break;
        }
      if (fresh_idx[c] < 0) {
        std::fprintf(stderr,
                     "gate: FAIL baseline column '%s' missing from candidate run in: %s\n",
                     col.c_str(), tname);
        ++failures;
      }
    }
    for (std::size_t r = 0; r < brows->arr.size(); ++r) {
      const auto& brow = brows->arr[r].arr;
      const auto& frow = frows->arr[r].arr;
      std::string label;
      for (std::size_t c = 0; c < brow.size() && c < cols->arr.size(); ++c)
        if (brow[c].kind == json::Value::Kind::kString)
          label += (label.empty() ? "" : "/") + brow[c].as_string();
      for (std::size_t c = 0; c < brow.size() && c < cols->arr.size(); ++c) {
        if (fresh_idx[c] < 0) continue;  // ungated, or already failed above
        const std::string col = cols->arr[c].as_string();
        if (brow[c].kind == json::Value::Kind::kString) continue;
        if (static_cast<std::size_t>(fresh_idx[c]) >= frow.size()) {
          std::fprintf(stderr, "gate: FAIL %s [%s] %s: cell missing from candidate row\n",
                       tname, label.c_str(), col.c_str());
          ++failures;
          continue;
        }
        double bv = brow[c].as_double();
        double fv = frow[static_cast<std::size_t>(fresh_idx[c])].as_double();
        ++checked;
        // Regression = growth; tiny absolute values are noise-proof.
        if (fv > bv * (1.0 + tol) && fv - bv > 1e-9) {
          std::fprintf(stderr,
                       "gate: FAIL %s [%s] %s: %.6g -> %.6g (+%.1f%% > %.0f%%)\n",
                       tname, label.c_str(), col.c_str(), bv, fv,
                       100.0 * (fv - bv) / (bv > 0 ? bv : 1.0), 100.0 * tol);
          ++failures;
        }
      }
    }
  }
  std::printf("gate: %zu comparisons, %zu failures (tol %.0f%%)\n", checked, failures,
              100.0 * tol);
  if (checked == 0) {
    std::fprintf(stderr, "gate: FAIL nothing compared — wrong files?\n");
    return 2;
  }
  return failures ? 1 : 0;
}

}  // namespace

namespace {

const char* kUsage =
    "usage: ptrie_report <trace.json | bench.json> [--rounds N]\n"
    "       ptrie_report --top <metrics.jsonl> [--follow]\n"
    "       ptrie_report --gate <base.json> <fresh.json> [--tol 0.15]\n"
    "       ptrie_report --env    (list every recognized PTRIE_* variable)\n";

bool load_json(const char* path, json::Value* root) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string error;
  if (!json::parse(ss.str(), *root, error)) {
    std::fprintf(stderr, "parse error in %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> paths;
  long rounds_cap = 30;
  bool gate_mode = false;
  bool top = false, follow = false;
  double tol = 0.15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds_cap = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate_mode = true;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = true;
    } else if (std::strcmp(argv[i], "--env") == 0) {
      // The registry pre-registers every known variable, so this listing
      // is complete without running anything; ci/doc_check.sh diffs it
      // against the README reference table.
      ptrie::obs::env::dump(stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unexpected argument %s\n%s", argv[i], kUsage);
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (top) {
    if (paths.size() != 1) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    return top_mode(paths[0], follow);
  }
  if (gate_mode) {
    if (paths.size() != 2) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    json::Value base, fresh;
    if (!load_json(paths[0], &base) || !load_json(paths[1], &fresh)) return 2;
    return gate(base, fresh, tol);
  }
  if (paths.size() != 1) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  json::Value root;
  if (!load_json(paths[0], &root)) return 1;
  if (root.find("traceEvents")) return report_trace(root, rounds_cap);
  if (root.find("tables")) return report_bench(root);
  std::fprintf(stderr, "%s: neither a PTRIE_TRACE file nor a bench --json file\n",
               paths[0]);
  return 1;
}
