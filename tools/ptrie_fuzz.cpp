// Differential fuzz driver (see src/check/): generates deterministic
// batch schedules from seeds, runs them against PimTrie and the Table-1
// baselines with oracle cross-checks, invariant checks and cost
// envelopes, and on failure greedily shrinks the schedule to a minimal
// replayable file.
//
//   ptrie_fuzz --seed 7 --structure all --batches 30     # one seed, 4 structures
//   ptrie_fuzz --seed 7 --seeds 10                       # seed matrix 7..16
//   ptrie_fuzz --replay fail.sched                       # re-run a saved schedule
//
// Output is deterministic for a given command line (identical op and
// check counts across runs and PTRIE_WORKERS settings); failures print
// a replay command. Exit status: 0 all runs passed, 1 a check failed,
// 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "pim/fault.hpp"

namespace {

using ptrie::check::CheckOptions;
using ptrie::check::GenParams;
using ptrie::check::kNoBatch;
using ptrie::check::RunResult;
using ptrie::check::Schedule;

const char* kUsage =
    "usage: ptrie_fuzz [options]\n"
    "  --seed N          first seed (default 1)\n"
    "  --seeds N         number of consecutive seeds (default 1)\n"
    "  --structure S     pimtrie|radix|xfast|range|serve|all (default all)\n"
    "  --profile P       uniform|zipf|cluster|dup|auto|all (default auto:\n"
    "                    profile cycles with the seed)\n"
    "  --batches N       batches per schedule (default 30)\n"
    "  --batch-cap N     max ops per batch (default 24)\n"
    "  --init N          initial bulk-load keys (default 64)\n"
    "  --ordered         bias the op mix toward the ordered operations\n"
    "                    (pred/succ/range/topk make up ~70%% of batches)\n"
    "  --no-deep         skip deep invariant checks\n"
    "  --no-envelopes    skip round/imbalance cost envelopes\n"
    "  --no-shrink       report the raw failing schedule, do not minimize\n"
    "  --shrink-out F    write the minimized schedule here\n"
    "                    (default ptrie_fuzz_min.sched)\n"
    "  --corrupt K       fire the test-only corruption hook (kind K) after\n"
    "                    every batch — the harness must catch it\n"
    "  --corrupt-from B  first batch index the hook fires on (default 0)\n"
    "  --replay FILE     run a saved schedule instead of generating\n"
    "  --dump FILE       write the generated schedule(s) and exit\n"
    "  --faults PLAN     install this pim::FaultPlan token on every run\n"
    "                    (rides in the schedule, so failures shrink and\n"
    "                    replay with the plan intact)\n"
    "  --fault-rate R    per-schedule recoverable noise plan: each reply\n"
    "                    transfer faults with probability R on its first\n"
    "                    two attempts (< the retry budget, so every fault\n"
    "                    recovers and the full oracle still applies),\n"
    "                    seeded by the schedule seed\n"
    "  --backend B       backend differential: run every schedule twice —\n"
    "                    once on the exact backend, once on B (wallclock|\n"
    "                    threaded) — and require byte-identical results\n"
    "                    (answer digest, statuses, round counts)\n";

struct Args {
  std::uint64_t seed = 1;
  std::size_t seeds = 1;
  std::string structure = "all";
  std::string profile = "auto";
  GenParams gp;
  CheckOptions opt;
  bool do_shrink = true;
  std::string shrink_out = "ptrie_fuzz_min.sched";
  std::string replay, dump;
  std::string faults;
  double fault_rate = 0.0;
  // Backend-differential mode: compare this backend against exact.
  std::optional<ptrie::pim::BackendKind> backend;
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string f = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (f == "--seed" && (v = next())) a->seed = std::strtoull(v, nullptr, 10);
    else if (f == "--seeds" && (v = next())) a->seeds = std::strtoull(v, nullptr, 10);
    else if (f == "--structure" && (v = next())) a->structure = v;
    else if (f == "--profile" && (v = next())) a->profile = v;
    else if (f == "--batches" && (v = next()))
      a->gp.n_batches = std::strtoull(v, nullptr, 10);
    else if (f == "--batch-cap" && (v = next()))
      a->gp.batch_cap = std::strtoull(v, nullptr, 10);
    else if (f == "--init" && (v = next())) a->gp.init_n = std::strtoull(v, nullptr, 10);
    else if (f == "--ordered") a->gp.ordered_bias = true;
    else if (f == "--no-deep") a->opt.deep = false;
    else if (f == "--no-envelopes") a->opt.envelopes = false;
    else if (f == "--no-shrink") a->do_shrink = false;
    else if (f == "--shrink-out" && (v = next())) a->shrink_out = v;
    else if (f == "--corrupt" && (v = next()))
      a->opt.corrupt_kind = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (f == "--corrupt-from" && (v = next()))
      a->opt.corrupt_from = std::strtoull(v, nullptr, 10);
    else if (f == "--replay" && (v = next())) a->replay = v;
    else if (f == "--dump" && (v = next())) a->dump = v;
    else if (f == "--faults" && (v = next())) a->faults = v;
    else if (f == "--fault-rate" && (v = next())) a->fault_rate = std::strtod(v, nullptr);
    else if (f == "--backend" && (v = next())) {
      a->backend = ptrie::pim::parse_backend(v);
      if (!a->backend) {
        std::fprintf(stderr, "ptrie_fuzz: unknown backend '%s' (exact|wallclock|threaded)\n",
                     v);
        return false;
      }
    }
    else {
      std::fprintf(stderr, "ptrie_fuzz: bad argument '%s'\n%s", f.c_str(), kUsage);
      return false;
    }
  }
  return true;
}

// On failure: shrink (optionally), persist, and print the replay command.
int report_failure(const Schedule& sched, const RunResult& r, const Args& a) {
  std::string where = r.fail_batch == kNoBatch
                          ? std::string("initial build")
                          : "batch " + std::to_string(r.fail_batch) + " (" +
                                ptrie::check::op_name(sched.batches[r.fail_batch].op) + ")";
  std::printf("ptrie_fuzz: FAIL structure=%s profile=%s seed=%llu at %s\n",
              sched.structure.c_str(), sched.profile.c_str(),
              static_cast<unsigned long long>(sched.seed), where.c_str());
  std::printf("  %s\n", r.error.c_str());

  Schedule minimal = sched;
  if (a.do_shrink) {
    ptrie::check::ShrinkStats st;
    minimal = ptrie::check::shrink(sched, a.opt, 400, &st);
    RunResult mr = ptrie::check::run_schedule(minimal, a.opt);
    std::printf("  shrunk: %zu -> %zu batches, %zu -> %zu ops (%zu re-runs); %s\n",
                sched.batches.size(), minimal.batches.size(), sched.op_count(),
                minimal.op_count(), st.runs, mr.ok ? "WARNING: no longer fails"
                                                   : mr.error.c_str());
  }
  std::ofstream out(a.shrink_out);
  if (out) {
    out << ptrie::check::serialize(minimal);
    std::string extra;
    if (a.opt.corrupt_kind >= 0)
      extra = " --corrupt " + std::to_string(a.opt.corrupt_kind) + " --corrupt-from " +
              std::to_string(a.opt.corrupt_from);
    std::printf("  replay with: ptrie_fuzz --replay %s%s\n", a.shrink_out.c_str(),
                extra.c_str());
  } else {
    std::fprintf(stderr, "ptrie_fuzz: cannot write %s\n", a.shrink_out.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, &a)) return 2;
  if (!a.faults.empty()) {
    // Validate once up front so a typo fails with the parser's message
    // instead of one identical error per schedule.
    ptrie::pim::FaultPlan plan;
    std::string err;
    if (!ptrie::pim::FaultPlan::parse(a.faults, &plan, &err)) {
      std::fprintf(stderr, "ptrie_fuzz: bad --faults plan: %s\n", err.c_str());
      return 2;
    }
  }

  std::vector<Schedule> schedules;
  if (!a.replay.empty()) {
    std::ifstream in(a.replay);
    if (!in) {
      std::fprintf(stderr, "ptrie_fuzz: cannot read %s\n", a.replay.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    // A dump file may hold several concatenated schedules (--seeds N
    // --dump); parse_all replays every one of them, where parse() would
    // silently stop at the first `end` marker.
    std::string err;
    if (!ptrie::check::parse_all(text.str(), &schedules, &err)) {
      std::fprintf(stderr, "ptrie_fuzz: %s: %s\n", a.replay.c_str(), err.c_str());
      return 2;
    }
  } else {
    static const char* kStructures[] = {"pimtrie", "radix", "xfast", "range", "serve"};
    static const char* kProfiles[] = {"uniform", "zipf", "cluster", "dup"};
    std::vector<std::string> structures, profiles;
    if (a.structure == "all") structures.assign(kStructures, kStructures + 5);
    else structures.push_back(a.structure);
    if (a.profile == "all") profiles.assign(kProfiles, kProfiles + 4);
    else profiles.push_back(a.profile);
    for (std::size_t k = 0; k < a.seeds; ++k) {
      std::uint64_t seed = a.seed + k;
      for (const auto& st : structures)
        for (auto pr : profiles) {
          std::string profile = pr == "auto" ? kProfiles[seed % 4] : pr;
          schedules.push_back(ptrie::check::make_schedule(st, profile, seed, a.gp));
        }
    }
  }

  // Fault plans ride inside the schedule so shrunk/replayed failures keep
  // them. --faults overrides whatever the schedule carried; --fault-rate
  // derives a recoverable per-schedule noise plan from the schedule seed
  // (count=2 < the default retry budget of 3, so every injected fault is
  // retried away and the differential oracle still checks every answer).
  for (auto& s : schedules) {
    if (!a.faults.empty()) {
      s.faults = a.faults;
    } else if (a.fault_rate > 0 && s.faults.empty()) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "noise@seed=%llu,rate=%g,count=2",
                    static_cast<unsigned long long>(s.seed * 0x9E3779B9ull + 0xF417),
                    a.fault_rate);
      s.faults = buf;
    }
  }

  if (!a.dump.empty()) {
    std::ofstream out(a.dump);
    if (!out) {
      std::fprintf(stderr, "ptrie_fuzz: cannot write %s\n", a.dump.c_str());
      return 2;
    }
    for (const auto& s : schedules) out << ptrie::check::serialize(s);
    std::printf("ptrie_fuzz: dumped %zu schedule(s) to %s\n", schedules.size(),
                a.dump.c_str());
    return 0;
  }

  std::size_t ops = 0, checks = 0, max_rounds = 0, faulted = 0;
  std::uint64_t retries = 0;
  double max_imb = 0.0;
  const bool differential = a.backend && *a.backend != ptrie::pim::BackendKind::kExact;
  for (const auto& sched : schedules) {
    CheckOptions opt = a.opt;
    if (a.backend) opt.backend = *a.backend;
    RunResult r = ptrie::check::run_schedule(sched, opt);
    ops += r.ops;
    checks += r.checks;
    faulted += r.faulted;
    retries += r.fault_retries;
    max_rounds = std::max(max_rounds, r.max_batch_rounds);
    max_imb = std::max(max_imb, r.max_imbalance);
    if (!r.ok) return report_failure(sched, r, a);
    if (differential) {
      // Reference run on the exact backend; every observable outcome
      // must match the candidate's byte for byte. Differential
      // mismatches are not shrunk — the full two-run context is the
      // diagnosis, and shrinking would only re-run one backend.
      opt.backend = ptrie::pim::BackendKind::kExact;
      RunResult ref = ptrie::check::run_schedule(sched, opt);
      auto mismatch = [&](const char* what, std::uint64_t got, std::uint64_t want) {
        std::printf(
            "ptrie_fuzz: FAIL backend differential %s vs exact: structure=%s "
            "profile=%s seed=%llu: %s %llu vs %llu\n",
            ptrie::pim::backend_name(*a.backend), sched.structure.c_str(),
            sched.profile.c_str(), static_cast<unsigned long long>(sched.seed), what,
            static_cast<unsigned long long>(got), static_cast<unsigned long long>(want));
        return 1;
      };
      if (!ref.ok) {
        std::printf("ptrie_fuzz: FAIL backend differential: exact reference failed: %s\n",
                    ref.error.c_str());
        return 1;
      }
      if (r.digest != ref.digest) return mismatch("digest", r.digest, ref.digest);
      if (r.ops != ref.ops) return mismatch("ops", r.ops, ref.ops);
      if (r.checks != ref.checks) return mismatch("checks", r.checks, ref.checks);
      if (r.rounds != ref.rounds) return mismatch("rounds", r.rounds, ref.rounds);
      if (r.max_batch_rounds != ref.max_batch_rounds)
        return mismatch("max_batch_rounds", r.max_batch_rounds, ref.max_batch_rounds);
      if (r.faulted != ref.faulted) return mismatch("faulted", r.faulted, ref.faulted);
      if (r.fault_retries != ref.fault_retries)
        return mismatch("fault_retries", r.fault_retries, ref.fault_retries);
    }
  }
  std::printf(
      "ptrie_fuzz: OK runs=%zu%s ops=%zu checks=%zu max_batch_rounds=%zu "
      "max_imbalance=%.3f faulted=%zu retries=%llu\n",
      schedules.size(),
      differential ? (std::string(" (x2: ") + ptrie::pim::backend_name(*a.backend) +
                      " vs exact)")
                         .c_str()
                   : "",
      ops, checks, max_rounds, max_imb, faulted,
      static_cast<unsigned long long>(retries));
  return 0;
}
